//! Loose stratification (Bry, PODS 1989, §5.1).
//!
//! Stratification rejects any negative edge in a dependency *cycle* at the
//! predicate level. Loose stratification refines the test to the *atom*
//! level: vertices of the **adorned dependency graph** are the atom
//! occurrences of the rules (rules renamed apart), and an arc `A₁ →ˢ_σ A₂`
//! exists when `A₁` unifies with the head `H` of a rule (mgu `τ`) and `A₂`
//! is a body atom of that rule occurring with polarity `s`; the arc label
//! `σ` is `τ` restricted to the variables of `A₁` and `A₂`.
//!
//! A program is **loosely stratified** iff there is no chain
//! `A₁ →_σ₁ … →_σₙ Aₙ₊₁` such that
//!   1. some arc of the chain is negative,
//!   2. the labels `σ₁ … σₙ` are compatible (their union is solvable), and
//!   3. the endpoints unify under the combined unifier (`A₁τ = Aₙ₊₁τ`).
//!
//! Because arc labels are fixed, traversing an arc twice adds no constraint:
//! any witness chain can be shortened to a *trail* (each arc used at most
//! once), so a depth-first search over trails with incremental
//! substitution-merging is complete. For function-free programs loose
//! stratification coincides with local stratification (Bry §5.1).

use crate::atom::Atom;
use crate::literal::Polarity;
use crate::program::Program;
use crate::rule::Rule;
use crate::subst::Subst;
use crate::term::Term;
use crate::unify::{mgu, unify_atoms, unify_terms};

/// One arc of the adorned dependency graph.
#[derive(Clone, Debug)]
pub struct AdornedArc {
    pub from: usize,
    pub to: usize,
    pub polarity: Polarity,
    /// The label: the head-unifier restricted to the endpoint atoms' variables.
    pub label: Subst,
}

/// The adorned dependency graph of a program.
#[derive(Clone, Debug, Default)]
pub struct AdornedGraph {
    /// Atom occurrences of the (renamed-apart) rules: heads first, then body
    /// atoms, rule by rule.
    pub vertices: Vec<Atom>,
    pub arcs: Vec<AdornedArc>,
}

/// A witness that a program is *not* loosely stratified: the chain of
/// vertices (by display form) whose endpoints unify and which crosses a
/// negative arc.
#[derive(Clone, Debug)]
pub struct LooseWitness {
    pub chain: Vec<String>,
}

impl std::fmt::Display for LooseWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "negative self-dependent chain: {}",
            self.chain.join(" -> ")
        )
    }
}

impl AdornedGraph {
    /// Builds the adorned dependency graph of `program`. Rules are renamed
    /// apart first; within a rule, head/body variable sharing is kept — that
    /// sharing is what propagates bindings along arcs.
    pub fn build(program: &Program) -> AdornedGraph {
        let rules: Vec<Rule> = program.rules.iter().map(|r| r.rectified()).collect();

        let mut g = AdornedGraph::default();
        // (head vertex id, body vertex ids) per rule.
        let mut rule_vertices: Vec<(usize, Vec<(usize, Polarity)>)> = Vec::new();
        for r in &rules {
            let h = g.vertices.len();
            g.vertices.push(r.head.clone());
            let mut body = Vec::new();
            for l in &r.body {
                body.push((g.vertices.len(), l.polarity));
                g.vertices.push(l.atom.clone());
            }
            rule_vertices.push((h, body));
        }

        // Arcs: every vertex that unifies with a rule head points at that
        // rule's body atoms.
        for a1 in 0..g.vertices.len() {
            for (r, (h, body)) in rules.iter().zip(&rule_vertices) {
                // Unify the source atom with the rule head. When the source
                // *is* this rule's head occurrence the mgu is the identity.
                let tau = if a1 == *h {
                    Some(Subst::new())
                } else {
                    mgu(&g.vertices[a1], &r.head)
                };
                let Some(tau) = tau else { continue };
                for &(a2, polarity) in body {
                    let label = restrict(&tau, &g.vertices[a1], &g.vertices[a2]);
                    g.arcs.push(AdornedArc {
                        from: a1,
                        to: a2,
                        polarity,
                        label,
                    });
                }
            }
        }
        g
    }

    /// Outgoing arcs of vertex `v` (by arc index).
    fn out_arcs(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.arcs
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.from == v)
            .map(|(i, _)| i)
    }
}

/// Restricts `tau` to the variables occurring in `a1` or `a2` (Bry's σ).
fn restrict(tau: &Subst, a1: &Atom, a2: &Atom) -> Subst {
    let mut sigma = Subst::new();
    let keep = |atom: &Atom, sigma: &mut Subst| {
        for v in atom.vars() {
            let w = tau.walk(Term::Var(v));
            if w != Term::Var(v) && sigma.get(v).is_none() {
                sigma.bind(v, w);
            }
        }
    };
    keep(a1, &mut sigma);
    keep(a2, &mut sigma);
    sigma
}

/// Checks loose stratification. `Ok(())` means loosely stratified; the error
/// carries a witness chain.
pub fn loosely_stratified(program: &Program) -> Result<(), LooseWitness> {
    let g = AdornedGraph::build(program);

    // DFS over trails from each start vertex, merging labels incrementally.
    // State: current vertex, merged substitution, whether a negative arc was
    // crossed, used-arc set, vertex path (for the witness).
    fn dfs(
        g: &AdornedGraph,
        start: usize,
        current: usize,
        merged: &Subst,
        negative_seen: bool,
        used: &mut Vec<bool>,
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        // A chain (length >= 1) whose endpoints unify under the merged
        // substitution and which crossed a negative arc is a witness.
        if !path.is_empty() && negative_seen {
            let mut tau = merged.clone();
            if unify_atoms(&g.vertices[start], &g.vertices[current], &mut tau) {
                let mut chain = vec![start];
                chain.extend(path.iter().copied());
                return Some(chain);
            }
        }
        for ai in g.out_arcs(current) {
            if used[ai] {
                continue;
            }
            let arc = &g.arcs[ai];
            // Merge the arc label into the accumulated substitution; an
            // inconsistent merge prunes this branch (incompatible unifiers).
            let mut next = merged.clone();
            let mut ok = true;
            for (v, t) in arc.label.iter() {
                if !unify_terms(Term::Var(v), t, &mut next) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            used[ai] = true;
            path.push(arc.to);
            let hit = dfs(
                g,
                start,
                arc.to,
                &next,
                negative_seen || arc.polarity == Polarity::Negative,
                used,
                path,
            );
            path.pop();
            used[ai] = false;
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    for start in 0..g.vertices.len() {
        let mut used = vec![false; g.arcs.len()];
        let mut path = Vec::new();
        if let Some(chain) = dfs(&g, start, start, &Subst::new(), false, &mut used, &mut path) {
            return Err(LooseWitness {
                chain: chain
                    .into_iter()
                    .map(|v| g.vertices[v].to_string())
                    .collect(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::stratify::stratify;
    use crate::atom::atom;
    use crate::literal::Literal;
    use crate::term::Term;

    /// Bry §5.1's example of a loosely stratified but unstratified program:
    /// `p(x, a) :- q(x, y), !r(z, x), !p(z, b).`
    fn bry_loose_example() -> Program {
        Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X"), Term::sym("a")]),
            vec![
                Literal::pos(atom("q", [Term::var("X"), Term::var("Y")])),
                Literal::pos(atom("s", [Term::var("Z"), Term::var("X")])),
                Literal::neg(atom("r", [Term::var("Z"), Term::var("X")])),
                Literal::neg(atom("p", [Term::var("Z"), Term::sym("b")])),
            ],
        )])
    }

    /// Bry Figure 1: `p(x) :- q(x, y), !p(y).` — constructively consistent on
    /// acyclic `q`, but not loosely stratified.
    fn bry_fig1() -> Program {
        Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("q", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("p", [Term::var("Y")])),
            ],
        )])
    }

    #[test]
    fn loose_example_is_loosely_stratified_but_not_stratified() {
        let p = bry_loose_example();
        assert!(stratify(&p).is_err(), "negation through p's own SCC");
        assert!(loosely_stratified(&p).is_ok(), "a/b clash blocks the chain");
    }

    #[test]
    fn fig1_is_not_loosely_stratified() {
        let err = loosely_stratified(&bry_fig1()).unwrap_err();
        assert!(err.chain.len() >= 2, "witness chain: {err}");
    }

    #[test]
    fn win_move_is_not_loosely_stratified() {
        let p = Program::from_rules(vec![Rule::new(
            atom("win", [Term::var("X")]),
            vec![
                Literal::pos(atom("move", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("win", [Term::var("Y")])),
            ],
        )]);
        assert!(loosely_stratified(&p).is_err());
    }

    #[test]
    fn stratified_programs_are_loosely_stratified() {
        // reached/unreached: stratified, hence loosely stratified.
        let p = Program::from_rules(vec![
            Rule::new(
                atom("reached", [Term::var("X")]),
                vec![Literal::pos(atom("edge", [Term::sym("s"), Term::var("X")]))],
            ),
            Rule::new(
                atom("reached", [Term::var("Y")]),
                vec![
                    Literal::pos(atom("reached", [Term::var("X")])),
                    Literal::pos(atom("edge", [Term::var("X"), Term::var("Y")])),
                ],
            ),
            Rule::new(
                atom("unreached", [Term::var("X")]),
                vec![
                    Literal::pos(atom("node", [Term::var("X")])),
                    Literal::neg(atom("reached", [Term::var("X")])),
                ],
            ),
        ]);
        assert!(stratify(&p).is_ok());
        assert!(loosely_stratified(&p).is_ok());
    }

    #[test]
    fn definite_recursion_is_loosely_stratified() {
        let p = Program::from_rules(vec![
            Rule::new(
                atom("anc", [Term::var("X"), Term::var("Y")]),
                vec![Literal::pos(atom("par", [Term::var("X"), Term::var("Y")]))],
            ),
            Rule::new(
                atom("anc", [Term::var("X"), Term::var("Y")]),
                vec![
                    Literal::pos(atom("par", [Term::var("X"), Term::var("Z")])),
                    Literal::pos(atom("anc", [Term::var("Z"), Term::var("Y")])),
                ],
            ),
        ]);
        assert!(loosely_stratified(&p).is_ok());
    }

    #[test]
    fn constant_guard_on_negation_chain_blocks_witness() {
        // p(x, a) :- q(x), !p(x, b).  The only candidate chain needs
        // p(_, a) to unify with p(_, b): blocked.
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X"), Term::sym("a")]),
            vec![
                Literal::pos(atom("q", [Term::var("X")])),
                Literal::neg(atom("p", [Term::var("X"), Term::sym("b")])),
            ],
        )]);
        assert!(loosely_stratified(&p).is_ok());
    }

    #[test]
    fn two_rule_negative_cycle_is_detected() {
        // p(x) :- d(x), !q(x).   q(x) :- d(x), !p(x).
        let p = Program::from_rules(vec![
            Rule::new(
                atom("p", [Term::var("X")]),
                vec![
                    Literal::pos(atom("d", [Term::var("X")])),
                    Literal::neg(atom("q", [Term::var("X")])),
                ],
            ),
            Rule::new(
                atom("q", [Term::var("X")]),
                vec![
                    Literal::pos(atom("d", [Term::var("X")])),
                    Literal::neg(atom("p", [Term::var("X")])),
                ],
            ),
        ]);
        assert!(loosely_stratified(&p).is_err());
    }

    #[test]
    fn adorned_graph_has_expected_shape() {
        let g = AdornedGraph::build(&bry_loose_example());
        // 1 head + 4 body atoms.
        assert_eq!(g.vertices.len(), 5);
        // Arcs only from atoms unifying with the head p(X, a): the head
        // itself. p(Z, b) does not unify (a/b clash), q/s/r are not heads.
        let sources: std::collections::HashSet<usize> = g.arcs.iter().map(|a| a.from).collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(g.arcs.len(), 4);
    }
}
