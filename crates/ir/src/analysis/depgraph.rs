//! The predicate dependency graph.
//!
//! Vertices are predicates; there is an edge `p → q` (with the polarity of
//! the occurrence) whenever a rule with head predicate `p` mentions `q` in
//! its body. Stratification and evaluation ordering are computed from this
//! graph.

use crate::atom::Predicate;
use crate::hash::FxHashMap;
use crate::literal::Polarity;
use crate::program::Program;

/// An edge `from → to` with the polarity of the body occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DepEdge {
    pub from: Predicate,
    pub to: Predicate,
    pub polarity: Polarity,
}

/// The predicate dependency graph of a program.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Dense vertex list in first-seen order (deterministic).
    pub vertices: Vec<Predicate>,
    index: FxHashMap<Predicate, usize>,
    /// Adjacency: for each vertex, outgoing `(target index, polarity)` pairs.
    pub succs: Vec<Vec<(usize, Polarity)>>,
}

impl DepGraph {
    /// Builds the dependency graph of `program`. Every predicate mentioned in
    /// any rule (heads and bodies) becomes a vertex; inline facts contribute
    /// vertices but no edges.
    pub fn build(program: &Program) -> DepGraph {
        let mut g = DepGraph::default();
        for r in &program.rules {
            let h = g.add_vertex(r.head.predicate());
            for l in &r.body {
                let b = g.add_vertex(l.atom.predicate());
                if !g.succs[h].contains(&(b, l.polarity)) {
                    g.succs[h].push((b, l.polarity));
                }
            }
        }
        for f in &program.facts {
            g.add_vertex(f.predicate());
        }
        g
    }

    fn add_vertex(&mut self, p: Predicate) -> usize {
        if let Some(&i) = self.index.get(&p) {
            return i;
        }
        let i = self.vertices.len();
        self.vertices.push(p);
        self.index.insert(p, i);
        self.succs.push(Vec::new());
        i
    }

    /// The vertex index of `p`, if present.
    pub fn vertex(&self, p: Predicate) -> Option<usize> {
        self.index.get(&p).copied()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// All edges, flattened.
    pub fn edges(&self) -> impl Iterator<Item = DepEdge> + '_ {
        self.succs.iter().enumerate().flat_map(move |(from, outs)| {
            outs.iter().map(move |&(to, polarity)| DepEdge {
                from: self.vertices[from],
                to: self.vertices[to],
                polarity,
            })
        })
    }

    /// The set of predicates from which `start` is reachable — i.e. every
    /// predicate the evaluation of `start` may depend on (including itself).
    pub fn reachable_from(&self, start: Predicate) -> Vec<Predicate> {
        let Some(s) = self.vertex(start) else {
            return vec![start];
        };
        let mut seen = vec![false; self.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.succs[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        self.vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| seen[*i])
            .map(|(_, p)| *p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;
    use crate::literal::Literal;
    use crate::rule::Rule;
    use crate::term::Term;

    fn win_move() -> Program {
        // win(X) :- move(X, Y), !win(Y).
        Program::from_rules(vec![Rule::new(
            atom("win", [Term::var("X")]),
            vec![
                Literal::pos(atom("move", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("win", [Term::var("Y")])),
            ],
        )])
    }

    #[test]
    fn builds_vertices_and_edges() {
        let g = DepGraph::build(&win_move());
        assert_eq!(g.len(), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges
            .iter()
            .any(|e| e.to == Predicate::new("move", 2) && e.polarity == Polarity::Positive));
        assert!(edges
            .iter()
            .any(|e| e.to == Predicate::new("win", 1) && e.polarity == Polarity::Negative));
    }

    #[test]
    fn parallel_edges_of_different_polarity_are_kept() {
        // p :- q, !q.  Both polarities must be present.
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("q", [Term::var("X")])),
                Literal::neg(atom("q", [Term::var("X")])),
            ],
        )]);
        let g = DepGraph::build(&p);
        let pols: Vec<_> = g.edges().map(|e| e.polarity).collect();
        assert!(pols.contains(&Polarity::Positive));
        assert!(pols.contains(&Polarity::Negative));
    }

    #[test]
    fn reachability_includes_self_and_dependencies() {
        let g = DepGraph::build(&win_move());
        let mut r = g.reachable_from(Predicate::new("win", 1));
        r.sort();
        assert_eq!(r.len(), 2);
        // Unknown predicates reach only themselves.
        let lone = g.reachable_from(Predicate::new("nowhere", 1));
        assert_eq!(lone, vec![Predicate::new("nowhere", 1)]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("q", [Term::var("X")])),
                Literal::pos(atom("q", [Term::var("X")])),
            ],
        )]);
        let g = DepGraph::build(&p);
        assert_eq!(g.edges().count(), 1);
    }
}
