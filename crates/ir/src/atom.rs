//! Predicates and atoms.

use crate::symbol::Symbol;
use crate::term::{Const, Term, Var};
use std::fmt;

/// A predicate identity: name plus arity.
///
/// Arity is part of the identity, so `p/1` and `p/2` are distinct predicates
/// (standard Datalog convention).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    pub name: Symbol,
    pub arity: usize,
}

impl Predicate {
    /// Interns `name` with the given arity.
    pub fn new(name: &str, arity: usize) -> Predicate {
        Predicate {
            name: Symbol::intern(name),
            arity,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An atom `p(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pub pred: Symbol,
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and terms.
    pub fn new(pred: &str, terms: Vec<Term>) -> Atom {
        Atom {
            pred: Symbol::intern(pred),
            terms,
        }
    }

    /// The predicate identity (name + arity) of this atom.
    pub fn predicate(&self) -> Predicate {
        Predicate {
            name: self.pred,
            arity: self.terms.len(),
        }
    }

    /// True iff every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_ground())
    }

    /// Iterates over the variables of the atom, with duplicates, in
    /// left-to-right order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// The constants of a ground atom, in order. `None` if any argument is a
    /// variable.
    pub fn ground_args(&self) -> Option<Vec<Const>> {
        self.terms.iter().map(|t| t.as_const()).collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Convenience constructor: `atom!("p", [term, …])` equivalents for tests and
/// examples without the parser.
pub fn atom(pred: &str, terms: impl IntoIterator<Item = Term>) -> Atom {
    Atom::new(pred, terms.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_identity_includes_arity() {
        assert_ne!(Predicate::new("p", 1), Predicate::new("p", 2));
        assert_eq!(Predicate::new("p", 1), Predicate::new("p", 1));
        assert_eq!(Predicate::new("p", 2).to_string(), "p/2");
    }

    #[test]
    fn groundness() {
        let g = atom("p", [Term::sym("a"), Term::int(1)]);
        assert!(g.is_ground());
        assert_eq!(g.ground_args(), Some(vec![Const::sym("a"), Const::int(1)]));
        let og = atom("p", [Term::sym("a"), Term::var("X")]);
        assert!(!og.is_ground());
        assert_eq!(og.ground_args(), None);
    }

    #[test]
    fn vars_in_order_with_duplicates() {
        let a = atom(
            "p",
            [
                Term::var("X"),
                Term::sym("c"),
                Term::var("Y"),
                Term::var("X"),
            ],
        );
        let vs: Vec<_> = a.vars().collect();
        assert_eq!(vs, vec![Var::new("X"), Var::new("Y"), Var::new("X")]);
    }

    #[test]
    fn display() {
        let a = atom("edge", [Term::sym("a"), Term::var("X")]);
        assert_eq!(a.to_string(), "edge(a, X)");
        let n = atom("halt", []);
        assert_eq!(n.to_string(), "halt");
    }
}
