//! # alexander-ir
//!
//! The intermediate representation shared by every crate of the *Alexander
//! templates* reproduction: interned symbols, function-free terms, atoms,
//! literals, rules and programs, plus unification, substitutions, adornments
//! and the static analyses (dependency graph, stratification, loose
//! stratification).
//!
//! The design keeps evaluation-hot values (`Symbol`, `Const`, `Term`) small
//! and `Copy`, with equality and hashing reduced to integer operations via a
//! global interner.
//!
//! ```
//! use alexander_ir::{Atom, Literal, Program, Rule, Term};
//!
//! // ancestor(X, Y) :- parent(X, Y).
//! // ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//! let program = Program::from_rules(vec![
//!     Rule::new(
//!         Atom::new("ancestor", vec![Term::var("X"), Term::var("Y")]),
//!         vec![Literal::pos(Atom::new("parent", vec![Term::var("X"), Term::var("Y")]))],
//!     ),
//!     Rule::new(
//!         Atom::new("ancestor", vec![Term::var("X"), Term::var("Y")]),
//!         vec![
//!             Literal::pos(Atom::new("parent", vec![Term::var("X"), Term::var("Z")])),
//!             Literal::pos(Atom::new("ancestor", vec![Term::var("Z"), Term::var("Y")])),
//!         ],
//!     ),
//! ]);
//! assert!(program.validate().is_ok());
//! assert!(alexander_ir::analysis::stratify(&program).is_ok());
//! ```

pub mod adornment;
pub mod analysis;
pub mod atom;
pub mod builtin;
pub mod hash;
pub mod literal;
pub mod program;
pub mod rule;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unify;

pub use adornment::{AdornedPredicate, Adornment, Bf};
pub use atom::{atom, Atom, Predicate};
pub use builtin::Builtin;
pub use hash::{hash_row, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, RowHasher};
pub use literal::{Literal, Polarity};
pub use program::{Program, ProgramError};
pub use rule::Rule;
pub use subst::Subst;
pub use symbol::Symbol;
pub use term::{Const, Term, Var};
pub use unify::{compatible, match_atom, mgu, unify_atoms, unify_terms};
