//! Adornments: bound/free annotations on predicate arguments.
//!
//! An adornment records, for each argument position of a predicate, whether
//! the argument is *bound* (known when the subquery is issued) or *free*.
//! Adornments drive the magic-sets and Alexander rewritings and name the
//! specialised predicates they generate (`anc_bf`, `sg_fb`, …).

use crate::atom::{Atom, Predicate};
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// One argument position's binding status.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Bf {
    Bound,
    Free,
}

impl Bf {
    /// `'b'` or `'f'`.
    pub fn letter(self) -> char {
        match self {
            Bf::Bound => 'b',
            Bf::Free => 'f',
        }
    }
}

/// An adornment: one [`Bf`] per argument position.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(pub Vec<Bf>);

impl Adornment {
    /// The all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![Bf::Free; arity])
    }

    /// The all-bound adornment of the given arity.
    pub fn all_bound(arity: usize) -> Adornment {
        Adornment(vec![Bf::Bound; arity])
    }

    /// Parses `"bf"`-style strings. Panics on characters other than `b`/`f`
    /// (programmer error in tests/benches).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Adornment {
        Adornment(
            s.chars()
                .map(|c| match c {
                    'b' => Bf::Bound,
                    'f' => Bf::Free,
                    other => panic!("invalid adornment character {other:?}"),
                })
                .collect(),
        )
    }

    /// Computes the adornment of `query`: argument positions holding
    /// constants (or variables in `bound_vars`) are bound.
    pub fn of_atom(query: &Atom, bound_vars: &[Var]) -> Adornment {
        Adornment(
            query
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(_) => Bf::Bound,
                    Term::Var(v) => {
                        if bound_vars.contains(v) {
                            Bf::Bound
                        } else {
                            Bf::Free
                        }
                    }
                })
                .collect(),
        )
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Indices of the bound positions, ascending.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, bf)| **bf == Bf::Bound)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the free positions, ascending.
    pub fn free_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, bf)| **bf == Bf::Free)
            .map(|(i, _)| i)
            .collect()
    }

    /// True iff every position is bound.
    pub fn is_all_bound(&self) -> bool {
        self.0.iter().all(|bf| *bf == Bf::Bound)
    }

    /// True iff every position is free.
    pub fn is_all_free(&self) -> bool {
        self.0.iter().all(|bf| *bf == Bf::Free)
    }

    /// The `"bf"` string form used in generated predicate names.
    pub fn suffix(&self) -> String {
        self.0.iter().map(|bf| bf.letter()).collect()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.suffix())
    }
}

impl fmt::Debug for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A predicate paired with an adornment — the unit the rewritings specialise.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdornedPredicate {
    pub pred: Predicate,
    pub adornment: Adornment,
}

impl AdornedPredicate {
    pub fn new(pred: Predicate, adornment: Adornment) -> AdornedPredicate {
        debug_assert_eq!(pred.arity, adornment.arity());
        AdornedPredicate { pred, adornment }
    }

    /// The interned name `p_bf` used for the specialised predicate in
    /// rewritten programs.
    pub fn mangled_name(&self) -> Symbol {
        Symbol::intern(&format!("{}_{}", self.pred.name, self.adornment.suffix()))
    }
}

impl fmt::Display for AdornedPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.pred, self.adornment)
    }
}

impl fmt::Debug for AdornedPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;

    #[test]
    fn adornment_of_query_atom() {
        let q = atom("anc", [Term::sym("a"), Term::var("X")]);
        let ad = Adornment::of_atom(&q, &[]);
        assert_eq!(ad.suffix(), "bf");
        assert_eq!(ad.bound_positions(), vec![0]);
        assert_eq!(ad.free_positions(), vec![1]);
    }

    #[test]
    fn bound_vars_parameter_binds_variables() {
        let q = atom("sg", [Term::var("X"), Term::var("Y")]);
        let ad = Adornment::of_atom(&q, &[Var::new("X")]);
        assert_eq!(ad.suffix(), "bf");
    }

    #[test]
    fn from_str_roundtrips() {
        let ad = Adornment::from_str("bfb");
        assert_eq!(ad.to_string(), "bfb");
        assert_eq!(ad.arity(), 3);
        assert!(!ad.is_all_bound());
        assert!(Adornment::all_bound(2).is_all_bound());
        assert!(Adornment::all_free(2).is_all_free());
    }

    #[test]
    #[should_panic(expected = "invalid adornment character")]
    fn from_str_rejects_garbage() {
        Adornment::from_str("bx");
    }

    #[test]
    fn mangled_names_are_stable() {
        let ap = AdornedPredicate::new(Predicate::new("anc", 2), Adornment::from_str("bf"));
        assert_eq!(ap.mangled_name().as_str(), "anc_bf");
        assert_eq!(ap.to_string(), "anc/2^bf");
    }
}
