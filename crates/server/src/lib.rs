//! The serving layer: a long-lived, multi-tenant query service over the
//! Alexander engine.
//!
//! The design splits reads from writes completely:
//!
//! * **Epochs** ([`epoch`]): every committed batch publishes a new immutable
//!   [`Epoch`] — a generation counter plus an [`Engine`] over a frozen,
//!   copy-on-write clone of the EDB. A query *pins* the epoch it started on
//!   and evaluates against it for its whole lifetime, so reads never block
//!   writes and a commit never invalidates a running query.
//! * **Writer** ([`service`]): mutations funnel through one writer —
//!   a [`DurableEngine`] (WAL append + fsync, then apply) when the server
//!   was opened with a snapshot/WAL pair, or an in-memory shadow EDB
//!   otherwise. `COMMIT` makes the batch durable, then publishes the next
//!   epoch.
//! * **Admission** ([`admission`]): a global cap bounds concurrently
//!   executing queries and a per-tenant cap keeps one tenant's recursive
//!   query storm from starving the rest; each admitted query runs under its
//!   session's [`Budget`]/[`CancelHandle`].
//! * **Wire protocol** ([`proto`], [`net`]): a line-oriented text protocol
//!   over TCP or a unix socket (`HELLO`/`QUERY`/`INSERT`/`DELETE`/`COMMIT`/
//!   `EPOCH`/`PING`/`QUIT`), served by the `alexander serve` subcommand.
//!
//! [`Engine`]: alexander_core::Engine
//! [`Epoch`]: epoch::Epoch
//! [`DurableEngine`]: alexander_durable::DurableEngine
//! [`Budget`]: alexander_eval::Budget
//! [`CancelHandle`]: alexander_eval::CancelHandle

pub mod admission;
pub mod epoch;
pub mod net;
pub mod proto;
pub mod service;

pub use admission::{Admission, AdmissionGuard};
pub use epoch::{Epoch, EpochStore};
pub use net::{serve_tcp, serve_unix, ServeHandle};
pub use proto::Request;
pub use service::{CommitInfo, QueryResponse, QueryService, ServerConfig, ServerError};
