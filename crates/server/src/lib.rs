//! The serving layer: a long-lived, multi-tenant query service over the
//! Alexander engine.
//!
//! The design splits reads from writes completely:
//!
//! * **Epochs** ([`epoch`]): every committed batch publishes a new immutable
//!   [`Epoch`] — a generation counter plus an [`Engine`] over a frozen,
//!   copy-on-write clone of the EDB. A query *pins* the epoch it started on
//!   and evaluates against it for its whole lifetime, so reads never block
//!   writes and a commit never invalidates a running query.
//! * **Writer** ([`service`]): mutations funnel through one writer —
//!   a [`DurableEngine`] (WAL append + fsync, then apply) when the server
//!   was opened with a snapshot/WAL pair, or an in-memory shadow EDB
//!   otherwise. `COMMIT` makes the batch durable, then publishes the next
//!   epoch.
//! * **Admission** ([`admission`]): a global cap bounds concurrently
//!   executing queries and a per-tenant cap keeps one tenant's recursive
//!   query storm from starving the rest; a bounded wait queue sheds
//!   overload with `ERR BUSY retry-after-ms=<hint>`; each admitted query
//!   runs under its session's [`Budget`]/[`CancelHandle`].
//! * **Health** ([`health`]): when the durable writer poisons, the service
//!   degrades to read-only (`ERR DEGRADED <reason>` on mutations, reads
//!   keep serving the last published epoch) and a supervisor thread heals
//!   it with bounded jittered backoff, republishing from disk truth.
//! * **Wire protocol** ([`proto`], [`net`]): a line-oriented text protocol
//!   over TCP or a unix socket (`HELLO`/`QUERY`/`INSERT`/`DELETE`/`COMMIT`/
//!   `EPOCH`/`HEALTH`/`PING`/`QUIT`), served by the `alexander serve`
//!   subcommand — with per-session idle/write deadlines, bounded reply
//!   buffers, and structured session teardown.
//!
//! [`Engine`]: alexander_core::Engine
//! [`Epoch`]: epoch::Epoch
//! [`DurableEngine`]: alexander_durable::DurableEngine
//! [`Budget`]: alexander_eval::Budget
//! [`CancelHandle`]: alexander_eval::CancelHandle

pub mod admission;
pub mod epoch;
#[cfg(feature = "failpoints")]
pub mod faults;
pub mod health;
pub mod net;
pub mod proto;
pub mod service;

pub use admission::{Admission, AdmissionGuard, Busy};
pub use epoch::{Epoch, EpochStore};
pub use health::{Health, ServerState};
pub use net::{serve_tcp, serve_unix, NetStats, ServeHandle, SessionEnd};
pub use proto::Request;
pub use service::{CommitInfo, QueryResponse, QueryService, ServerConfig, ServerError};
