//! The query service: one writer, many epoch-pinned readers, and a
//! supervisor that heals the writer when disk fails.
//!
//! All mutations serialise through a single writer slot. `INSERT`/`DELETE`
//! buffer; `COMMIT` makes the batch durable (WAL append + fsync, then apply
//! — when the service was opened on a snapshot/WAL pair), mirrors it into
//! the shadow EDB, and publishes the shadow as the next [`Epoch`]. The
//! publish is a copy-on-write clone, O(#relations): the epoch freezes, and
//! the writer's next mutation copies only the relations it touches.
//!
//! Queries admission-check, pin the current epoch, and evaluate against it
//! with their session's budget. A query pinned at generation N returns
//! bit-identical answers whether or not generations N+1.. commit mid-query.
//!
//! When a durable commit half-fails (the writer poisons because disk and
//! memory may disagree) the service does not die: it enters the degraded
//! read-only state ([`ServerState::Degraded`]) — every published epoch
//! keeps answering queries, mutations return [`ServerError::Degraded`] —
//! and a supervisor thread re-opens the snapshot/WAL pair with bounded
//! jittered exponential backoff. Recovery treats disk as authoritative:
//! the failed batch may have fully persisted (the fsync *result* was lost,
//! not necessarily the bytes), so the healed state is republished as a new
//! epoch unconditionally, and clients observe either the batch's presence
//! or its absence — always a committed-batch boundary, never a torn state.

use crate::admission::Admission;
use crate::epoch::{Epoch, EpochStore};
use crate::health::{Health, ServerState};
use alexander_core::{Engine, Strategy};
use alexander_durable::{DurableEngine, DurableError};
use alexander_eval::{Budget, CancelHandle};
use alexander_ir::{Atom, Program};
use alexander_storage::Database;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Serving knobs; `Default` suits tests and small deployments.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Global cap on concurrently executing queries.
    pub max_concurrent: usize,
    /// Per-tenant cap (clamped to `max_concurrent`).
    pub tenant_cap: usize,
    /// Admission wait-queue bound; arrivals beyond it are shed with
    /// [`ServerError::Busy`] instead of queueing unbounded latency.
    pub max_queue: usize,
    /// Base retry-after hint (ms) attached to shed requests.
    pub shed_retry_after_ms: u64,
    /// Worker threads per bottom-up fixpoint round, per query.
    pub threads: usize,
    /// Default per-query budget for sessions that don't bring their own.
    pub budget: Budget,
    /// Strategy used when a request names none.
    pub default_strategy: Strategy,
    /// Supervisor backoff after a failed heal attempt: first retry delay…
    pub heal_backoff_ms: u64,
    /// …doubling (with jitter) up to this ceiling.
    pub heal_backoff_max_ms: u64,
    /// Sessions idle longer than this are closed (None = never).
    pub idle_timeout: Option<Duration>,
    /// Per-write socket deadline; a client that can't drain a reply within
    /// it is disconnected as a slow client (None = block forever).
    pub write_timeout: Option<Duration>,
    /// Hard cap on one reply's size; larger replies are replaced by an
    /// `ERR` line instead of buffering without bound.
    pub max_reply_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: 8,
            tenant_cap: 4,
            max_queue: 16,
            shed_retry_after_ms: 25,
            threads: 1,
            budget: Budget::default(),
            default_strategy: Strategy::Alexander,
            heal_backoff_ms: 10,
            heal_backoff_max_ms: 1_000,
            idle_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
            max_reply_bytes: 16 << 20,
        }
    }
}

/// Everything the service can report to a client.
#[derive(Debug)]
pub enum ServerError {
    /// Malformed request content (bad atom text, unknown strategy, …).
    Parse(String),
    /// The engine rejected the query (invalid program state, undefined
    /// answers under conditional semantics, …).
    Engine(String),
    /// A mutation was rejected before buffering (IDB target, non-ground).
    Rejected(String),
    /// The durable writer failed; carries the structured cause (including
    /// `Poisoned { op }` after a half-failed commit).
    Durable(DurableError),
    /// The service is in degraded read-only mode; reads keep serving, the
    /// supervisor is recovering the writer. Wire form: `ERR DEGRADED <r>`.
    Degraded(String),
    /// Shed by overload control; retry after the hinted backoff. Wire
    /// form: `ERR BUSY retry-after-ms=<n>`.
    Busy { retry_after_ms: u64 },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Parse(m) => write!(f, "parse error: {m}"),
            ServerError::Engine(m) => write!(f, "query error: {m}"),
            ServerError::Rejected(m) => write!(f, "rejected: {m}"),
            ServerError::Durable(e) => write!(f, "durable error: {e}"),
            ServerError::Degraded(r) => write!(f, "degraded (read-only): {r}"),
            ServerError::Busy { retry_after_ms } => {
                write!(f, "busy: retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DurableError> for ServerError {
    fn from(e: DurableError) -> ServerError {
        ServerError::Durable(e)
    }
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The epoch the query was pinned to for its whole execution.
    pub generation: u64,
    /// The strategy that answered it.
    pub strategy: Strategy,
    /// Sorted, deduplicated ground answers, rendered as atom text.
    pub answers: Vec<String>,
    /// False when a budget/cancellation stopped evaluation early; the
    /// answers are then a sound subset.
    pub complete: bool,
    /// Human-readable completion state (`"complete"`, `"budget exhausted
    /// (facts)"`, …).
    pub completion: String,
}

/// One committed batch, as seen by clients.
#[derive(Clone, Copy, Debug)]
pub struct CommitInfo {
    /// The generation the batch created.
    pub generation: u64,
    /// Records in the batch (inserts + deletes).
    pub committed: usize,
}

/// The writer half: an optional durable engine (disk truth) plus the shadow
/// EDB the next epoch is published from.
struct Writer {
    durable: Option<DurableEngine>,
    shadow: Database,
    /// `(is_insert, fact)` mirror of the buffered batch, applied to the
    /// shadow at commit. The durable engine keeps its own buffer; this one
    /// exists so the shadow update never re-extracts the full EDB.
    pending: Vec<(bool, Atom)>,
}

/// Shared service state: what the public [`QueryService`] handle and the
/// supervisor thread both hold.
struct Core {
    /// The normalised program (inline facts folded out) — what commits
    /// stage new epochs from and what `is_idb` checks consult.
    program: Program,
    /// The program as given at `open` — what `DurableEngine::recover`
    /// expects, since the on-disk EDB never contains the folded inline
    /// facts (they are re-folded by `Engine::new` on every open and heal).
    source_program: Program,
    epochs: EpochStore,
    writer: Mutex<Writer>,
    admission: Admission,
    config: ServerConfig,
    health: Health,
    /// The snapshot/WAL pair the supervisor heals from; `None` = in-memory.
    store: Option<(PathBuf, PathBuf)>,
    stop: AtomicBool,
}

/// A long-lived, multi-tenant query service (see module docs). Dropping it
/// stops the supervisor thread.
pub struct QueryService {
    core: Arc<Core>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Opens the service. With `store = Some((snapshot, wal))` the writer is
    /// durable: an existing pair is recovered (committed batches replayed,
    /// torn tails truncated), a missing one is created from `edb`, and a
    /// supervisor thread is started to heal the writer if it later poisons.
    /// A half-present pair (exactly one of the two files) is an error —
    /// creating over the survivor would silently wipe committed data. With
    /// `None` the service is in-memory.
    pub fn open(
        program: Program,
        edb: Database,
        store: Option<(&Path, &Path)>,
        config: ServerConfig,
    ) -> Result<QueryService, ServerError> {
        let source_program = program.clone();
        let (durable, seed) = match store {
            Some((snap, wal)) => {
                let eng = match (snap.exists(), wal.exists()) {
                    (true, true) => DurableEngine::recover(program.clone(), snap, wal)?.0,
                    (false, false) => DurableEngine::create(program.clone(), edb, snap, wal)?,
                    (snap_there, _) => {
                        let (there, missing) = if snap_there { (snap, wal) } else { (wal, snap) };
                        return Err(ServerError::Rejected(format!(
                            "refusing to open a half-present durable store: {} exists but {} \
                             is missing; restore the pair or remove both to start fresh",
                            there.display(),
                            missing.display()
                        )));
                    }
                };
                let seed = eng.edb();
                (Some(eng), seed)
            }
            None => (None, edb),
        };
        // Build generation 0 through `Engine::new`, which validates the
        // program and folds inline facts into the EDB — the normalised
        // program/shadow pair is what every later epoch derives from.
        let engine0 = Engine::new(program, seed).map_err(|e| ServerError::Engine(e.to_string()))?;
        let program = engine0.program().clone();
        let shadow = engine0.edb().clone();
        let admission = Admission::new(config.max_concurrent, config.tenant_cap, config.max_queue)
            .with_retry_after_ms(config.shed_retry_after_ms);
        let core = Arc::new(Core {
            program,
            source_program,
            epochs: EpochStore::new(Epoch::new(0, engine0)),
            writer: Mutex::new(Writer {
                durable,
                shadow,
                pending: Vec::new(),
            }),
            admission,
            config,
            health: Health::default(),
            store: store.map(|(s, w)| (s.to_path_buf(), w.to_path_buf())),
            stop: AtomicBool::new(false),
        });
        // Only a durable writer can poison, so only a durable service needs
        // a supervisor.
        let supervisor = if core.store.is_some() {
            let sup = core.clone();
            Some(std::thread::spawn(move || supervise(&sup)))
        } else {
            None
        };
        Ok(QueryService {
            core,
            supervisor: Mutex::new(supervisor),
        })
    }

    /// Answers `query` for `tenant` under the config's default budget.
    pub fn query(
        &self,
        tenant: &str,
        query: &Atom,
        strategy: Option<Strategy>,
    ) -> Result<QueryResponse, ServerError> {
        self.query_with(tenant, query, strategy, None, None)
    }

    /// Full-control variant: a session brings its own [`Budget`] and/or
    /// [`CancelHandle`]. Waits in the bounded admission queue for a slot;
    /// sheds with [`ServerError::Busy`] when the queue is full; then pins
    /// the current epoch and evaluates wholly against it. Degraded mode
    /// does not affect this path — reads serve in every state.
    pub fn query_with(
        &self,
        tenant: &str,
        query: &Atom,
        strategy: Option<Strategy>,
        budget: Option<Budget>,
        cancel: Option<&CancelHandle>,
    ) -> Result<QueryResponse, ServerError> {
        let _slot = self
            .core
            .admission
            .admit(tenant)
            .map_err(|b| ServerError::Busy {
                retry_after_ms: b.retry_after_ms,
            })?;
        let epoch = self.core.epochs.pin();
        let strategy = strategy.unwrap_or(self.core.config.default_strategy);
        // The clone is cheap (copy-on-write EDB); it exists so each request
        // can carry its own governance without touching the shared epoch.
        let mut engine = epoch
            .engine()
            .clone()
            .with_threads(self.core.config.threads)
            .with_budget(budget.unwrap_or(self.core.config.budget));
        if let Some(c) = cancel {
            let mut opts = engine.eval_options();
            opts.cancel = Some(c.clone());
            engine = engine.with_eval_options(opts);
        }
        let r = engine
            .query(query, strategy)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        Ok(QueryResponse {
            generation: epoch.generation(),
            strategy,
            answers: r.answers.iter().map(|a| a.to_string()).collect(),
            complete: r.report.completion.is_complete(),
            completion: r.report.completion.to_string(),
        })
    }

    /// Buffers an EDB insertion; returns the pending batch size.
    pub fn insert(&self, fact: &Atom) -> Result<usize, ServerError> {
        self.buffer(true, fact)
    }

    /// Buffers an EDB deletion; returns the pending batch size.
    pub fn delete(&self, fact: &Atom) -> Result<usize, ServerError> {
        self.buffer(false, fact)
    }

    fn buffer(&self, insert: bool, fact: &Atom) -> Result<usize, ServerError> {
        let pred = fact.predicate();
        if self.core.program.is_idb(pred) {
            return Err(ServerError::Rejected(format!(
                "{pred} is intensional; derived facts cannot be stored"
            )));
        }
        // Groundness probe on a scratch relation: rejected here so a commit
        // can never log a record replay would refuse.
        if Database::new().insert_atom(fact).is_err() {
            return Err(ServerError::Rejected(format!(
                "{fact} is not ground; only ground facts can be stored"
            )));
        }
        let mut w = self.core.writer.lock().expect("writer lock");
        // Lock order: writer, then health — everywhere.
        if let ServerState::Degraded { reason } = self.core.health.state() {
            return Err(ServerError::Degraded(reason));
        }
        if let Some(d) = w.durable.as_mut() {
            let res = if insert {
                d.insert(fact)
            } else {
                d.delete(fact)
            };
            if let Err(e) = res {
                return Err(self.core.writer_failed(d, e));
            }
        }
        w.pending.push((insert, fact.clone()));
        Ok(w.pending.len())
    }

    /// Commits the buffered batch and publishes the next epoch. The epoch's
    /// engine is staged *before* disk is touched, so a batch the engine
    /// would reject fails cleanly (still pending, nothing written) and a
    /// successful durable commit is always followed by a publish. Durable
    /// mode: WAL append + fsync; a half-failed commit degrades the service
    /// to read-only (the buffered batch's fate is decided by recovery —
    /// disk is authoritative) and the supervisor heals it.
    pub fn commit(&self) -> Result<CommitInfo, ServerError> {
        let mut w = self.core.writer.lock().expect("writer lock");
        if let ServerState::Degraded { reason } = self.core.health.state() {
            return Err(ServerError::Degraded(reason));
        }
        if w.pending.is_empty() {
            return Ok(CommitInfo {
                generation: self.core.epochs.generation(),
                committed: 0,
            });
        }
        // Stage the next epoch on a copy of the shadow. If Engine::new
        // rejects the result, the batch stays pending and disk is
        // untouched — publish can no longer fail after the durable commit.
        let mut staged = w.shadow.clone();
        for (insert, fact) in &w.pending {
            if *insert {
                // invariant: groundness was checked at buffer time.
                staged.insert_atom(fact).expect("ground fact");
            } else {
                staged.remove_atom(fact);
            }
        }
        let engine = Engine::new(self.core.program.clone(), staged)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        if let Some(d) = w.durable.as_mut() {
            if let Err(e) = d.commit() {
                // The batch's outcome is indeterminate (the frame may be
                // fully on disk even though the commit call failed); drop
                // the in-memory mirror — recovery decides from disk.
                let err = self.core.writer_failed(d, e);
                w.pending.clear();
                return Err(err);
            }
        }
        let committed = std::mem::take(&mut w.pending).len();
        w.shadow = engine.edb().clone();
        // Publish under the writer lock so generations are strictly ordered
        // with commits. The engine froze the staged shadow: the epoch and
        // the writer now share relations copy-on-write.
        let generation = self.core.epochs.publish(engine);
        Ok(CommitInfo {
            generation,
            committed,
        })
    }

    /// Takes a durable checkpoint (atomic snapshot, then WAL truncate).
    /// `Ok(false)` for an in-memory service; rejected while mutations are
    /// pending (commit or discard them first). A checkpoint failure after
    /// the snapshot wrote but before the WAL truncated poisons the writer
    /// — the service degrades and the supervisor heals it like any other
    /// write-path failure.
    pub fn checkpoint(&self) -> Result<bool, ServerError> {
        let mut w = self.core.writer.lock().expect("writer lock");
        if let ServerState::Degraded { reason } = self.core.health.state() {
            return Err(ServerError::Degraded(reason));
        }
        if !w.pending.is_empty() {
            return Err(ServerError::Rejected(format!(
                "{} mutations pending; commit before checkpointing",
                w.pending.len()
            )));
        }
        match w.durable.as_mut() {
            None => Ok(false),
            Some(d) => match d.checkpoint() {
                Ok(()) => Ok(true),
                Err(e) => Err(self.core.writer_failed(d, e)),
            },
        }
    }

    /// The current (latest published) generation.
    pub fn generation(&self) -> u64 {
        self.core.epochs.generation()
    }

    /// Pins the current epoch — the same frozen view queries get.
    pub fn pin(&self) -> std::sync::Arc<Epoch> {
        self.core.epochs.pin()
    }

    /// The admission controller (exposed for monitoring and tests).
    pub fn admission(&self) -> &Admission {
        &self.core.admission
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.core.config
    }

    /// Buffered (uncommitted) mutations.
    pub fn pending(&self) -> usize {
        self.core.writer.lock().expect("writer lock").pending.len()
    }

    /// The current server state (healthy or degraded read-only).
    pub fn state(&self) -> ServerState {
        self.core.health.state()
    }

    /// Health counters and waits (exposed for monitoring and tests).
    pub fn health(&self) -> &Health {
        &self.core.health
    }

    /// Blocks until the service is healthy or `timeout` elapses.
    pub fn wait_for_healthy(&self, timeout: Duration) -> bool {
        self.core.health.wait_for(timeout, |s| !s.is_degraded())
    }

    /// Blocks until the service is degraded or `timeout` elapses.
    pub fn wait_for_degraded(&self, timeout: Duration) -> bool {
        self.core.health.wait_for(timeout, ServerState::is_degraded)
    }

    /// Current WAL length in bytes (`None` for an in-memory service). The
    /// chaos harness aims crash offsets relative to this.
    pub fn durable_wal_len(&self) -> Option<u64> {
        let w = self.core.writer.lock().expect("writer lock");
        w.durable.as_ref().map(|d| d.wal_len())
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.supervisor.lock().expect("supervisor lock").take() {
            t.join().ok();
        }
    }
}

impl Core {
    /// Classifies a durable-layer failure under the writer lock: poisoning
    /// degrades the service (the supervisor takes over), anything else is
    /// reported as-is.
    fn writer_failed(&self, d: &DurableEngine, e: DurableError) -> ServerError {
        match d.poisoned_by() {
            Some(op) => {
                let reason = format!("writer poisoned by {op}");
                self.health.degrade(&reason);
                ServerError::Degraded(reason)
            }
            None => ServerError::Durable(e),
        }
    }

    /// One recovery attempt: re-open the snapshot/WAL pair (disk is
    /// authoritative), validate by building a fresh engine, then atomically
    /// swap the writer and republish. Republishing is unconditional — the
    /// failed commit's frame may have fully persisted, in which case disk
    /// is *ahead* of the last published epoch and readers must see it.
    fn heal(&self) -> Result<(), ServerError> {
        // invariant: the supervisor only runs for durable services.
        let (snap, wal) = self.store.as_ref().expect("durable store");
        let (recovered, _stats) = DurableEngine::recover(self.source_program.clone(), snap, wal)?;
        let seed = recovered.edb();
        let engine = Engine::new(self.source_program.clone(), seed)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        let mut w = self.writer.lock().expect("writer lock");
        w.durable = Some(recovered);
        w.shadow = engine.edb().clone();
        w.pending.clear();
        self.epochs.publish(engine);
        self.health.heal();
        Ok(())
    }
}

/// The supervisor loop: sleep until degraded, then retry [`Core::heal`]
/// with jittered exponential backoff until it succeeds or the service
/// stops. Backoff is bounded (`heal_backoff_max_ms`) so a long outage
/// retries steadily instead of backing off into the far future.
fn supervise(core: &Core) {
    let mut rng = rng_seed();
    while core.health.wait_degraded_or_stop(&core.stop) {
        let mut backoff = core.config.heal_backoff_ms.max(1);
        loop {
            if core.stop.load(Ordering::SeqCst) {
                return;
            }
            if core.heal().is_ok() {
                break;
            }
            // Full jitter in [backoff/2, backoff): desynchronises retry
            // storms if several services share a failing disk.
            let jitter = xorshift(&mut rng) % (backoff / 2 + 1);
            sleep_unless_stopped(&core.stop, Duration::from_millis(backoff / 2 + jitter));
            backoff = (backoff * 2).min(core.config.heal_backoff_max_ms.max(1));
        }
    }
}

/// Sleeps in short slices so a stop request never waits out a long backoff.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

/// A seed that differs per process/thread without consulting the clock:
/// `RandomState` is randomly keyed at construction.
fn rng_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
        | 1
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";

    fn service(extra_facts: &str) -> QueryService {
        let program = parse(&format!("{RULES} {extra_facts}")).unwrap().program;
        QueryService::open(program, Database::new(), None, ServerConfig::default()).unwrap()
    }

    #[test]
    fn commits_publish_epochs_and_pinned_queries_stay_put() {
        let s = service("par(a, b).");
        let q = parse_atom("anc(a, X)").unwrap();
        assert_eq!(s.generation(), 0);

        let epoch0 = s.pin();
        s.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
        let info = s.commit().unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.committed, 1);

        // New queries see the new epoch…
        let r = s.query("t", &q, None).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.answers, ["anc(a, b)", "anc(a, c)"]);
        // …the old pin still answers from generation 0.
        let old = epoch0.engine().query(&q, Strategy::Alexander).unwrap();
        assert_eq!(old.answers.len(), 1);
    }

    #[test]
    fn deletes_retract_derived_consequences_in_the_next_epoch() {
        let s = service("par(a, b). par(b, c).");
        let q = parse_atom("anc(a, X)").unwrap();
        assert_eq!(s.query("t", &q, None).unwrap().answers.len(), 2);
        s.delete(&parse_atom("par(b, c)").unwrap()).unwrap();
        s.commit().unwrap();
        assert_eq!(s.query("t", &q, None).unwrap().answers, ["anc(a, b)"]);
    }

    #[test]
    fn idb_and_nonground_mutations_are_rejected() {
        let s = service("par(a, b).");
        let err = s.insert(&parse_atom("anc(a, b)").unwrap()).unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)), "{err}");
        let err = s.insert(&parse_atom("par(a, X)").unwrap()).unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)), "{err}");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let s = service("par(a, b).");
        let info = s.commit().unwrap();
        assert_eq!(info.generation, 0);
        assert_eq!(info.committed, 0);
        assert_eq!(s.generation(), 0);
    }

    #[test]
    fn session_budget_flags_partial_results() {
        let s = service("par(a, b). par(b, c). par(c, d).");
        let q = parse_atom("anc(X, Y)").unwrap();
        let r = s
            .query_with(
                "t",
                &q,
                Some(Strategy::SemiNaive),
                Some(Budget::default().with_max_facts(1)),
                None,
            )
            .unwrap();
        assert!(!r.complete, "{r:?}");
        assert!(r.completion.contains("budget"), "{}", r.completion);
    }

    #[test]
    fn session_cancel_handle_stops_queries() {
        let s = service("par(a, b).");
        let q = parse_atom("anc(a, X)").unwrap();
        let cancel = CancelHandle::default();
        cancel.cancel();
        let r = s
            .query_with("t", &q, Some(Strategy::SemiNaive), None, Some(&cancel))
            .unwrap();
        assert_eq!(r.completion, "cancelled");
    }

    #[test]
    fn queries_against_extensional_predicates_are_lookups() {
        let s = service("par(a, b).");
        let r = s
            .query("t", &parse_atom("par(a, X)").unwrap(), None)
            .unwrap();
        assert_eq!(r.answers, ["par(a, b)"]);
    }

    #[test]
    fn an_in_memory_service_is_healthy_and_checkpoint_is_a_noop() {
        let s = service("par(a, b).");
        assert_eq!(s.state(), ServerState::Healthy);
        assert!(!s.checkpoint().unwrap(), "nothing durable to checkpoint");
        assert_eq!(s.durable_wal_len(), None);
    }

    #[test]
    fn checkpoint_refuses_while_mutations_are_pending() {
        let s = service("par(a, b).");
        s.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
        let err = s.checkpoint().unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)), "{err}");
        s.commit().unwrap();
        assert!(!s.checkpoint().unwrap());
    }

    #[test]
    fn a_saturated_service_sheds_queries_as_busy() {
        let program = parse(&format!("{RULES} par(a, b).")).unwrap().program;
        let config = ServerConfig {
            max_concurrent: 1,
            tenant_cap: 1,
            max_queue: 0,
            shed_retry_after_ms: 7,
            ..ServerConfig::default()
        };
        let s = QueryService::open(program, Database::new(), None, config).unwrap();
        // Hold the only slot directly via the admission controller, then
        // observe the query path shed.
        let slot = s.admission().acquire("hog");
        let err = s
            .query("t", &parse_atom("anc(a, X)").unwrap(), None)
            .unwrap_err();
        match err {
            ServerError::Busy { retry_after_ms } => assert!(retry_after_ms >= 7),
            other => panic!("expected Busy, got {other}"),
        }
        assert_eq!(s.admission().shed_total(), 1);
        drop(slot);
        assert!(s
            .query("t", &parse_atom("anc(a, X)").unwrap(), None)
            .is_ok());
    }
}
