//! The query service: one writer, many epoch-pinned readers.
//!
//! All mutations serialise through a single writer slot. `INSERT`/`DELETE`
//! buffer; `COMMIT` makes the batch durable (WAL append + fsync, then apply
//! — when the service was opened on a snapshot/WAL pair), mirrors it into
//! the shadow EDB, and publishes the shadow as the next [`Epoch`]. The
//! publish is a copy-on-write clone, O(#relations): the epoch freezes, and
//! the writer's next mutation copies only the relations it touches.
//!
//! Queries admission-check, pin the current epoch, and evaluate against it
//! with their session's budget. A query pinned at generation N returns
//! bit-identical answers whether or not generations N+1.. commit mid-query.

use crate::admission::Admission;
use crate::epoch::{Epoch, EpochStore};
use alexander_core::{Engine, Strategy};
use alexander_durable::{DurableEngine, DurableError};
use alexander_eval::{Budget, CancelHandle};
use alexander_ir::{Atom, Program};
use alexander_storage::Database;
use std::fmt;
use std::path::Path;
use std::sync::Mutex;

/// Serving knobs; `Default` suits tests and small deployments.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Global cap on concurrently executing queries.
    pub max_concurrent: usize,
    /// Per-tenant cap (clamped to `max_concurrent`).
    pub tenant_cap: usize,
    /// Worker threads per bottom-up fixpoint round, per query.
    pub threads: usize,
    /// Default per-query budget for sessions that don't bring their own.
    pub budget: Budget,
    /// Strategy used when a request names none.
    pub default_strategy: Strategy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: 8,
            tenant_cap: 4,
            threads: 1,
            budget: Budget::default(),
            default_strategy: Strategy::Alexander,
        }
    }
}

/// Everything the service can report to a client.
#[derive(Debug)]
pub enum ServerError {
    /// Malformed request content (bad atom text, unknown strategy, …).
    Parse(String),
    /// The engine rejected the query (invalid program state, undefined
    /// answers under conditional semantics, …).
    Engine(String),
    /// A mutation was rejected before buffering (IDB target, non-ground).
    Rejected(String),
    /// The durable writer failed; carries the structured cause (including
    /// `Poisoned { op }` after a half-failed commit).
    Durable(DurableError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Parse(m) => write!(f, "parse error: {m}"),
            ServerError::Engine(m) => write!(f, "query error: {m}"),
            ServerError::Rejected(m) => write!(f, "rejected: {m}"),
            ServerError::Durable(e) => write!(f, "durable error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DurableError> for ServerError {
    fn from(e: DurableError) -> ServerError {
        ServerError::Durable(e)
    }
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The epoch the query was pinned to for its whole execution.
    pub generation: u64,
    /// The strategy that answered it.
    pub strategy: Strategy,
    /// Sorted, deduplicated ground answers, rendered as atom text.
    pub answers: Vec<String>,
    /// False when a budget/cancellation stopped evaluation early; the
    /// answers are then a sound subset.
    pub complete: bool,
    /// Human-readable completion state (`"complete"`, `"budget exhausted
    /// (facts)"`, …).
    pub completion: String,
}

/// One committed batch, as seen by clients.
#[derive(Clone, Copy, Debug)]
pub struct CommitInfo {
    /// The generation the batch created.
    pub generation: u64,
    /// Records in the batch (inserts + deletes).
    pub committed: usize,
}

/// The writer half: an optional durable engine (disk truth) plus the shadow
/// EDB the next epoch is published from.
struct Writer {
    durable: Option<DurableEngine>,
    shadow: Database,
    /// `(is_insert, fact)` mirror of the buffered batch, applied to the
    /// shadow at commit. The durable engine keeps its own buffer; this one
    /// exists so the shadow update never re-extracts the full EDB.
    pending: Vec<(bool, Atom)>,
}

/// A long-lived, multi-tenant query service (see module docs).
pub struct QueryService {
    program: Program,
    epochs: EpochStore,
    writer: Mutex<Writer>,
    admission: Admission,
    config: ServerConfig,
}

impl QueryService {
    /// Opens the service. With `store = Some((snapshot, wal))` the writer is
    /// durable: an existing pair is recovered (committed batches replayed,
    /// torn tails truncated), a missing one is created from `edb`. A
    /// half-present pair (exactly one of the two files) is an error —
    /// creating over the survivor would silently wipe committed data. With
    /// `None` the service is in-memory.
    pub fn open(
        program: Program,
        edb: Database,
        store: Option<(&Path, &Path)>,
        config: ServerConfig,
    ) -> Result<QueryService, ServerError> {
        let (durable, seed) = match store {
            Some((snap, wal)) => {
                let eng = match (snap.exists(), wal.exists()) {
                    (true, true) => DurableEngine::recover(program.clone(), snap, wal)?.0,
                    (false, false) => DurableEngine::create(program.clone(), edb, snap, wal)?,
                    (snap_there, _) => {
                        let (there, missing) = if snap_there { (snap, wal) } else { (wal, snap) };
                        return Err(ServerError::Rejected(format!(
                            "refusing to open a half-present durable store: {} exists but {} \
                             is missing; restore the pair or remove both to start fresh",
                            there.display(),
                            missing.display()
                        )));
                    }
                };
                let seed = eng.edb();
                (Some(eng), seed)
            }
            None => (None, edb),
        };
        // Build generation 0 through `Engine::new`, which validates the
        // program and folds inline facts into the EDB — the normalised
        // program/shadow pair is what every later epoch derives from.
        let engine0 = Engine::new(program, seed).map_err(|e| ServerError::Engine(e.to_string()))?;
        let program = engine0.program().clone();
        let shadow = engine0.edb().clone();
        Ok(QueryService {
            program,
            epochs: EpochStore::new(Epoch::new(0, engine0)),
            writer: Mutex::new(Writer {
                durable,
                shadow,
                pending: Vec::new(),
            }),
            admission: Admission::new(config.max_concurrent, config.tenant_cap),
            config,
        })
    }

    /// Answers `query` for `tenant` under the config's default budget.
    pub fn query(
        &self,
        tenant: &str,
        query: &Atom,
        strategy: Option<Strategy>,
    ) -> Result<QueryResponse, ServerError> {
        self.query_with(tenant, query, strategy, None, None)
    }

    /// Full-control variant: a session brings its own [`Budget`] and/or
    /// [`CancelHandle`]. Blocks in admission until the tenant has a slot;
    /// then pins the current epoch and evaluates wholly against it.
    pub fn query_with(
        &self,
        tenant: &str,
        query: &Atom,
        strategy: Option<Strategy>,
        budget: Option<Budget>,
        cancel: Option<&CancelHandle>,
    ) -> Result<QueryResponse, ServerError> {
        let _slot = self.admission.acquire(tenant);
        let epoch = self.epochs.pin();
        let strategy = strategy.unwrap_or(self.config.default_strategy);
        // The clone is cheap (copy-on-write EDB); it exists so each request
        // can carry its own governance without touching the shared epoch.
        let mut engine = epoch
            .engine()
            .clone()
            .with_threads(self.config.threads)
            .with_budget(budget.unwrap_or(self.config.budget));
        if let Some(c) = cancel {
            let mut opts = engine.eval_options();
            opts.cancel = Some(c.clone());
            engine = engine.with_eval_options(opts);
        }
        let r = engine
            .query(query, strategy)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        Ok(QueryResponse {
            generation: epoch.generation(),
            strategy,
            answers: r.answers.iter().map(|a| a.to_string()).collect(),
            complete: r.report.completion.is_complete(),
            completion: r.report.completion.to_string(),
        })
    }

    /// Buffers an EDB insertion; returns the pending batch size.
    pub fn insert(&self, fact: &Atom) -> Result<usize, ServerError> {
        self.buffer(true, fact)
    }

    /// Buffers an EDB deletion; returns the pending batch size.
    pub fn delete(&self, fact: &Atom) -> Result<usize, ServerError> {
        self.buffer(false, fact)
    }

    fn buffer(&self, insert: bool, fact: &Atom) -> Result<usize, ServerError> {
        let pred = fact.predicate();
        if self.program.is_idb(pred) {
            return Err(ServerError::Rejected(format!(
                "{pred} is intensional; derived facts cannot be stored"
            )));
        }
        // Groundness probe on a scratch relation: rejected here so a commit
        // can never log a record replay would refuse.
        if Database::new().insert_atom(fact).is_err() {
            return Err(ServerError::Rejected(format!(
                "{fact} is not ground; only ground facts can be stored"
            )));
        }
        let mut w = self.writer.lock().expect("writer lock");
        if let Some(d) = w.durable.as_mut() {
            if insert {
                d.insert(fact)?;
            } else {
                d.delete(fact)?;
            }
        }
        w.pending.push((insert, fact.clone()));
        Ok(w.pending.len())
    }

    /// Commits the buffered batch and publishes the next epoch. The epoch's
    /// engine is staged *before* disk is touched, so a batch the engine
    /// would reject fails cleanly (still pending, nothing written) and a
    /// successful durable commit is always followed by a publish. Durable
    /// mode: WAL append + fsync; a half-failed commit poisons the writer
    /// (later calls return the structured `Poisoned` error) while every
    /// already-published epoch keeps serving.
    pub fn commit(&self) -> Result<CommitInfo, ServerError> {
        let mut w = self.writer.lock().expect("writer lock");
        if w.pending.is_empty() {
            return Ok(CommitInfo {
                generation: self.epochs.generation(),
                committed: 0,
            });
        }
        // Stage the next epoch on a copy of the shadow. If Engine::new
        // rejects the result, the batch stays pending and disk is
        // untouched — publish can no longer fail after the durable commit.
        let mut staged = w.shadow.clone();
        for (insert, fact) in &w.pending {
            if *insert {
                // invariant: groundness was checked at buffer time.
                staged.insert_atom(fact).expect("ground fact");
            } else {
                staged.remove_atom(fact);
            }
        }
        let engine = Engine::new(self.program.clone(), staged)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        if let Some(d) = w.durable.as_mut() {
            d.commit()?;
        }
        let committed = std::mem::take(&mut w.pending).len();
        w.shadow = engine.edb().clone();
        // Publish under the writer lock so generations are strictly ordered
        // with commits. The engine froze the staged shadow: the epoch and
        // the writer now share relations copy-on-write.
        let generation = self.epochs.publish(engine);
        Ok(CommitInfo {
            generation,
            committed,
        })
    }

    /// The current (latest published) generation.
    pub fn generation(&self) -> u64 {
        self.epochs.generation()
    }

    /// Pins the current epoch — the same frozen view queries get.
    pub fn pin(&self) -> std::sync::Arc<Epoch> {
        self.epochs.pin()
    }

    /// The admission controller (exposed for monitoring and tests).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Buffered (uncommitted) mutations.
    pub fn pending(&self) -> usize {
        self.writer.lock().expect("writer lock").pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";

    fn service(extra_facts: &str) -> QueryService {
        let program = parse(&format!("{RULES} {extra_facts}")).unwrap().program;
        QueryService::open(program, Database::new(), None, ServerConfig::default()).unwrap()
    }

    #[test]
    fn commits_publish_epochs_and_pinned_queries_stay_put() {
        let s = service("par(a, b).");
        let q = parse_atom("anc(a, X)").unwrap();
        assert_eq!(s.generation(), 0);

        let epoch0 = s.pin();
        s.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
        let info = s.commit().unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.committed, 1);

        // New queries see the new epoch…
        let r = s.query("t", &q, None).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.answers, ["anc(a, b)", "anc(a, c)"]);
        // …the old pin still answers from generation 0.
        let old = epoch0.engine().query(&q, Strategy::Alexander).unwrap();
        assert_eq!(old.answers.len(), 1);
    }

    #[test]
    fn deletes_retract_derived_consequences_in_the_next_epoch() {
        let s = service("par(a, b). par(b, c).");
        let q = parse_atom("anc(a, X)").unwrap();
        assert_eq!(s.query("t", &q, None).unwrap().answers.len(), 2);
        s.delete(&parse_atom("par(b, c)").unwrap()).unwrap();
        s.commit().unwrap();
        assert_eq!(s.query("t", &q, None).unwrap().answers, ["anc(a, b)"]);
    }

    #[test]
    fn idb_and_nonground_mutations_are_rejected() {
        let s = service("par(a, b).");
        let err = s.insert(&parse_atom("anc(a, b)").unwrap()).unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)), "{err}");
        let err = s.insert(&parse_atom("par(a, X)").unwrap()).unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)), "{err}");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let s = service("par(a, b).");
        let info = s.commit().unwrap();
        assert_eq!(info.generation, 0);
        assert_eq!(info.committed, 0);
        assert_eq!(s.generation(), 0);
    }

    #[test]
    fn session_budget_flags_partial_results() {
        let s = service("par(a, b). par(b, c). par(c, d).");
        let q = parse_atom("anc(X, Y)").unwrap();
        let r = s
            .query_with(
                "t",
                &q,
                Some(Strategy::SemiNaive),
                Some(Budget::default().with_max_facts(1)),
                None,
            )
            .unwrap();
        assert!(!r.complete, "{r:?}");
        assert!(r.completion.contains("budget"), "{}", r.completion);
    }

    #[test]
    fn session_cancel_handle_stops_queries() {
        let s = service("par(a, b).");
        let q = parse_atom("anc(a, X)").unwrap();
        let cancel = CancelHandle::default();
        cancel.cancel();
        let r = s
            .query_with("t", &q, Some(Strategy::SemiNaive), None, Some(&cancel))
            .unwrap();
        assert_eq!(r.completion, "cancelled");
    }

    #[test]
    fn queries_against_extensional_predicates_are_lookups() {
        let s = service("par(a, b).");
        let r = s
            .query("t", &parse_atom("par(a, X)").unwrap(), None)
            .unwrap();
        assert_eq!(r.answers, ["par(a, b)"]);
    }
}
