//! Admission control: a global concurrency cap with per-tenant fairness.
//!
//! Every query holds an [`AdmissionGuard`] while it executes. The global
//! cap bounds total concurrent evaluation (queries are CPU-bound; running
//! more than the machine can schedule only adds latency), and the tenant
//! cap keeps any single tenant at a fixed share of it, so one tenant
//! hammering recursive queries leaves headroom for everyone else. Waiters
//! block on a condvar and are re-admitted in whatever order the OS wakes
//! them — fairness here is the *cap*, not FIFO ordering.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct Counts {
    active: usize,
    per_tenant: HashMap<String, usize>,
}

/// The shared admission state (see module docs).
#[derive(Debug)]
pub struct Admission {
    global_cap: usize,
    tenant_cap: usize,
    counts: Mutex<Counts>,
    freed: Condvar,
}

impl Admission {
    /// Caps are clamped to at least 1, and the tenant cap to at most the
    /// global cap (a tenant can never use more than everything).
    pub fn new(global_cap: usize, tenant_cap: usize) -> Admission {
        let global_cap = global_cap.max(1);
        Admission {
            global_cap,
            tenant_cap: tenant_cap.clamp(1, global_cap),
            counts: Mutex::new(Counts::default()),
            freed: Condvar::new(),
        }
    }

    /// Blocks until `tenant` may run another query, then reserves a slot.
    /// Dropping the guard frees the slot and wakes waiters.
    pub fn acquire(&self, tenant: &str) -> AdmissionGuard<'_> {
        let mut c = self.counts.lock().expect("admission lock");
        loop {
            let tenant_active = c.per_tenant.get(tenant).copied().unwrap_or(0);
            if c.active < self.global_cap && tenant_active < self.tenant_cap {
                break;
            }
            c = self.freed.wait(c).expect("admission lock");
        }
        c.active += 1;
        *c.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        AdmissionGuard {
            admission: self,
            tenant: tenant.to_string(),
        }
    }

    /// Non-blocking variant: `None` when the tenant or the server is at
    /// capacity right now.
    pub fn try_acquire(&self, tenant: &str) -> Option<AdmissionGuard<'_>> {
        let mut c = self.counts.lock().expect("admission lock");
        let tenant_active = c.per_tenant.get(tenant).copied().unwrap_or(0);
        if c.active >= self.global_cap || tenant_active >= self.tenant_cap {
            return None;
        }
        c.active += 1;
        *c.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Some(AdmissionGuard {
            admission: self,
            tenant: tenant.to_string(),
        })
    }

    /// Currently executing queries (all tenants).
    pub fn active(&self) -> usize {
        self.counts.lock().expect("admission lock").active
    }

    /// The global concurrency cap.
    pub fn global_cap(&self) -> usize {
        self.global_cap
    }

    /// The per-tenant concurrency cap.
    pub fn tenant_cap(&self) -> usize {
        self.tenant_cap
    }

    fn release(&self, tenant: &str) {
        let mut c = self.counts.lock().expect("admission lock");
        c.active -= 1;
        // invariant: a guard exists for this tenant, so the entry does too.
        let n = c.per_tenant.get_mut(tenant).expect("tenant entry");
        *n -= 1;
        if *n == 0 {
            c.per_tenant.remove(tenant);
        }
        drop(c);
        self.freed.notify_all();
    }
}

/// A reserved execution slot; freed on drop.
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    admission: &'a Admission,
    tenant: String,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn caps_are_clamped_sanely() {
        let a = Admission::new(0, 0);
        assert_eq!(a.global_cap(), 1);
        assert_eq!(a.tenant_cap(), 1);
        let a = Admission::new(4, 100);
        assert_eq!(a.tenant_cap(), 4, "tenant cap clamps to the global cap");
    }

    #[test]
    fn tenant_cap_limits_one_tenant_without_blocking_others() {
        let a = Admission::new(4, 2);
        let _g1 = a.acquire("loud");
        let _g2 = a.acquire("loud");
        // "loud" is at its cap; "quiet" still gets in immediately.
        assert!(a.try_acquire("loud").is_none());
        let _g3 = a.try_acquire("quiet").expect("quiet tenant admitted");
        assert_eq!(a.active(), 3);
    }

    #[test]
    fn global_cap_bounds_everyone() {
        let a = Admission::new(2, 2);
        let _g1 = a.acquire("t1");
        let _g2 = a.acquire("t2");
        assert!(a.try_acquire("t3").is_none(), "global cap reached");
        drop(_g1);
        assert!(a.try_acquire("t3").is_some());
    }

    #[test]
    fn blocked_acquires_wake_on_release() {
        let a = Arc::new(Admission::new(1, 1));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                let _g = a.acquire("t");
                let now = a.active();
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "cap held under contention");
        assert_eq!(a.active(), 0, "all slots returned");
    }
}
