//! Admission control: a global concurrency cap, per-tenant fairness, and a
//! bounded wait queue that sheds overload instead of queueing it.
//!
//! Every query holds an [`AdmissionGuard`] while it executes. The global
//! cap bounds total concurrent evaluation (queries are CPU-bound; running
//! more than the machine can schedule only adds latency), and the tenant
//! cap keeps any single tenant at a fixed share of it, so one tenant
//! hammering recursive queries leaves headroom for everyone else.
//!
//! When every slot is taken, arrivals wait on a condvar — but only
//! `max_queue` of them. Beyond that the controller *sheds*: [`Admission::admit`]
//! returns [`Busy`] immediately with a retry-after hint scaled by how deep
//! the queue already is, and the caller answers `ERR BUSY
//! retry-after-ms=<hint>` so clients back off instead of piling ever more
//! latency onto a saturated server. Waiters are re-admitted in whatever
//! order the OS wakes them — fairness here is the *cap*, not FIFO ordering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct Counts {
    active: usize,
    /// Admitted-but-capped callers currently blocked on the condvar.
    waiting: usize,
    per_tenant: HashMap<String, usize>,
}

/// Returned (not thrown) when the wait queue is full: the request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Suggested client-side backoff before retrying, in milliseconds.
    /// Scales with queue depth at shed time; clients should jitter it.
    pub retry_after_ms: u64,
}

/// The shared admission state (see module docs).
#[derive(Debug)]
pub struct Admission {
    global_cap: usize,
    tenant_cap: usize,
    /// Waiters beyond this are shed with [`Busy`].
    max_queue: usize,
    /// Base of the retry-after hint (scaled by queue depth).
    retry_after_ms: u64,
    counts: Mutex<Counts>,
    freed: Condvar,
    shed: AtomicU64,
}

impl Admission {
    /// Caps are clamped to at least 1, and the tenant cap to at most the
    /// global cap (a tenant can never use more than everything).
    /// `max_queue` may be 0: full means shed immediately.
    pub fn new(global_cap: usize, tenant_cap: usize, max_queue: usize) -> Admission {
        let global_cap = global_cap.max(1);
        Admission {
            global_cap,
            tenant_cap: tenant_cap.clamp(1, global_cap),
            max_queue,
            retry_after_ms: 25,
            counts: Mutex::new(Counts::default()),
            freed: Condvar::new(),
            shed: AtomicU64::new(0),
        }
    }

    /// Overrides the base retry-after hint (clamped to at least 1ms).
    pub fn with_retry_after_ms(mut self, ms: u64) -> Admission {
        self.retry_after_ms = ms.max(1);
        self
    }

    /// Admits `tenant` or sheds. If a slot is free the call returns at once;
    /// if the server is saturated it waits on the bounded queue; if the
    /// queue is full too, it returns [`Busy`] with a retry-after hint
    /// instead of queueing unbounded latency.
    pub fn admit(&self, tenant: &str) -> Result<AdmissionGuard<'_>, Busy> {
        self.admit_bounded(tenant, Some(self.max_queue))
    }

    /// Blocks until `tenant` may run another query, then reserves a slot —
    /// the unbounded variant (never sheds). Dropping the guard frees the
    /// slot and wakes waiters.
    pub fn acquire(&self, tenant: &str) -> AdmissionGuard<'_> {
        // invariant: an unbounded queue never sheds.
        self.admit_bounded(tenant, None).expect("unbounded admit")
    }

    fn admit_bounded(
        &self,
        tenant: &str,
        bound: Option<usize>,
    ) -> Result<AdmissionGuard<'_>, Busy> {
        let mut c = self.counts.lock().expect("admission lock");
        let mut queued = false;
        loop {
            let tenant_active = c.per_tenant.get(tenant).copied().unwrap_or(0);
            if c.active < self.global_cap && tenant_active < self.tenant_cap {
                break;
            }
            if !queued {
                if let Some(max) = bound {
                    if c.waiting >= max {
                        let hint = self.retry_hint(c.waiting);
                        drop(c);
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        return Err(Busy {
                            retry_after_ms: hint,
                        });
                    }
                }
                c.waiting += 1;
                queued = true;
            }
            c = self.freed.wait(c).expect("admission lock");
        }
        if queued {
            c.waiting -= 1;
        }
        c.active += 1;
        *c.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(AdmissionGuard {
            admission: self,
            tenant: tenant.to_string(),
        })
    }

    /// The retry hint for a shed request: the base scaled by how many
    /// global-cap "rounds" of work are already queued ahead of it.
    fn retry_hint(&self, waiting: usize) -> u64 {
        let rounds = 1 + (waiting / self.global_cap) as u64;
        (self.retry_after_ms * rounds).min(10_000)
    }

    /// Non-blocking variant: `None` when the tenant or the server is at
    /// capacity right now.
    pub fn try_acquire(&self, tenant: &str) -> Option<AdmissionGuard<'_>> {
        let mut c = self.counts.lock().expect("admission lock");
        let tenant_active = c.per_tenant.get(tenant).copied().unwrap_or(0);
        if c.active >= self.global_cap || tenant_active >= self.tenant_cap {
            return None;
        }
        c.active += 1;
        *c.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Some(AdmissionGuard {
            admission: self,
            tenant: tenant.to_string(),
        })
    }

    /// Currently executing queries (all tenants).
    pub fn active(&self) -> usize {
        self.counts.lock().expect("admission lock").active
    }

    /// Callers currently blocked in the wait queue.
    pub fn waiting(&self) -> usize {
        self.counts.lock().expect("admission lock").waiting
    }

    /// Tenants with at least one active slot (accounting entries live).
    /// Admission drops a tenant's entry when its last slot frees, so a
    /// quiesced controller always reports 0 — the churn tests pin this.
    pub fn tracked_tenants(&self) -> usize {
        self.counts.lock().expect("admission lock").per_tenant.len()
    }

    /// Requests shed with [`Busy`] since construction.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The global concurrency cap.
    pub fn global_cap(&self) -> usize {
        self.global_cap
    }

    /// The per-tenant concurrency cap.
    pub fn tenant_cap(&self) -> usize {
        self.tenant_cap
    }

    /// The wait-queue bound beyond which requests are shed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    fn release(&self, tenant: &str) {
        let mut c = self.counts.lock().expect("admission lock");
        c.active -= 1;
        // invariant: a guard exists for this tenant, so the entry does too.
        let n = c.per_tenant.get_mut(tenant).expect("tenant entry");
        *n -= 1;
        if *n == 0 {
            c.per_tenant.remove(tenant);
        }
        drop(c);
        self.freed.notify_all();
    }
}

/// A reserved execution slot; freed on drop.
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    admission: &'a Admission,
    tenant: String,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn caps_are_clamped_sanely() {
        let a = Admission::new(0, 0, 0);
        assert_eq!(a.global_cap(), 1);
        assert_eq!(a.tenant_cap(), 1);
        let a = Admission::new(4, 100, 8);
        assert_eq!(a.tenant_cap(), 4, "tenant cap clamps to the global cap");
        assert_eq!(a.max_queue(), 8);
    }

    #[test]
    fn tenant_cap_limits_one_tenant_without_blocking_others() {
        let a = Admission::new(4, 2, 8);
        let _g1 = a.acquire("loud");
        let _g2 = a.acquire("loud");
        // "loud" is at its cap; "quiet" still gets in immediately.
        assert!(a.try_acquire("loud").is_none());
        let _g3 = a.try_acquire("quiet").expect("quiet tenant admitted");
        assert_eq!(a.active(), 3);
    }

    #[test]
    fn global_cap_bounds_everyone() {
        let a = Admission::new(2, 2, 8);
        let _g1 = a.acquire("t1");
        let _g2 = a.acquire("t2");
        assert!(a.try_acquire("t3").is_none(), "global cap reached");
        drop(_g1);
        assert!(a.try_acquire("t3").is_some());
    }

    #[test]
    fn blocked_acquires_wake_on_release() {
        let a = Arc::new(Admission::new(1, 1, 64));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                let _g = a.acquire("t");
                let now = a.active();
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "cap held under contention");
        assert_eq!(a.active(), 0, "all slots returned");
        assert_eq!(a.tracked_tenants(), 0, "no per-tenant entries leaked");
    }

    #[test]
    fn a_full_queue_sheds_with_a_retry_hint() {
        let a = Admission::new(1, 1, 0);
        let _g = a.acquire("t");
        // Queue bound 0: the saturated controller sheds instantly.
        let busy = a.admit("t").unwrap_err();
        assert!(busy.retry_after_ms >= 1, "{busy:?}");
        assert_eq!(a.shed_total(), 1);
        // A freed slot admits again.
        drop(_g);
        assert!(a.admit("t").is_ok());
    }

    #[test]
    fn queued_admits_wait_instead_of_shedding_until_the_bound() {
        let a = Arc::new(Admission::new(1, 1, 1));
        let g = a.acquire("t");
        // One waiter fits in the queue…
        let waiter = {
            let a = a.clone();
            std::thread::spawn(move || a.admit("w").map(|_| ()))
        };
        // …wait until it is actually queued, then the next arrival sheds.
        while a.waiting() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let busy = a.admit("x").unwrap_err();
        assert!(busy.retry_after_ms >= 1);
        drop(g);
        waiter.join().unwrap().expect("queued waiter admitted");
        assert_eq!(a.active(), 0);
        assert_eq!(a.waiting(), 0);
    }

    #[test]
    fn retry_hint_scales_with_queue_depth() {
        let a = Admission::new(2, 2, 0).with_retry_after_ms(10);
        assert_eq!(a.retry_hint(0), 10);
        assert_eq!(a.retry_hint(2), 20);
        assert_eq!(a.retry_hint(7), 40);
        // Bounded: the hint never promises more than 10s of backoff.
        assert_eq!(
            Admission::new(1, 1, 0)
                .with_retry_after_ms(9999)
                .retry_hint(100),
            10_000
        );
    }
}
