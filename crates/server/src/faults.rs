//! Network-layer fault injection (the socket seam's `FaultFile`).
//!
//! Compiled in behind the `failpoints` feature and interposed on every
//! accepted connection. Like the durability crate's fault-aware file
//! writer, this stream knows its own byte positions and interprets the
//! declarative IO actions from `alexander_eval::failpoints` itself:
//!
//! * `"server-conn-read"` — [`Action::Sleep`] stalls the reader before
//!   every read (a client that trickles bytes); [`Action::CrashAfterBytes`]
//!   ends the inbound stream at byte `n` (mid-frame disconnect: EOF in the
//!   middle of a request line).
//! * `"server-conn-write"` — [`Action::Sleep`] delays every write (a
//!   congested link); [`Action::ShortWrite`] persists the first `k` bytes
//!   of the next write and then fails the connection (`EPIPE` mid-reply);
//!   [`Action::CrashAfterBytes`] lets `n` reply bytes through and then
//!   fails (the client vanished partway through a long answer).
//!
//! Positions are per-connection, so "byte 40" means byte 40 of *this*
//! session's stream — tests arm a site, open one connection, and get a
//! deterministic failure point.

use alexander_eval::failpoints::{action, Action};
use std::io::{self, Read, Write};

/// The site consulted before every inbound read.
pub const SITE_READ: &str = "server-conn-read";
/// The site consulted before every outbound write.
pub const SITE_WRITE: &str = "server-conn-write";

/// A connection wrapper that injects the configured socket faults.
pub struct FaultStream<S> {
    inner: S,
    read_pos: u64,
    write_pos: u64,
    /// Once a write-side fault fires, the connection stays broken — a real
    /// peer does not come back after `EPIPE`.
    write_dead: bool,
}

impl<S> FaultStream<S> {
    pub fn new(inner: S) -> FaultStream<S> {
        FaultStream {
            inner,
            read_pos: 0,
            write_pos: 0,
            write_dead: false,
        }
    }
}

fn gone() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: peer gone")
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match action(SITE_READ) {
            Some(Action::Sleep(d)) => std::thread::sleep(d),
            Some(Action::CrashAfterBytes(n)) => {
                if self.read_pos >= n {
                    return Ok(0);
                }
                // Deliver at most the bytes before the cut, so the EOF
                // lands exactly at offset `n` even on a large read.
                let room = (n - self.read_pos).min(buf.len() as u64) as usize;
                let k = self.inner.read(&mut buf[..room])?;
                self.read_pos += k as u64;
                return Ok(k);
            }
            _ => {}
        }
        let k = self.inner.read(buf)?;
        self.read_pos += k as u64;
        Ok(k)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.write_dead {
            return Err(gone());
        }
        match action(SITE_WRITE) {
            Some(Action::Sleep(d)) => std::thread::sleep(d),
            Some(Action::ShortWrite(k)) => {
                self.write_dead = true;
                let k = k.min(buf.len());
                if k == 0 {
                    return Err(gone());
                }
                let k = self.inner.write(&buf[..k])?;
                self.write_pos += k as u64;
                return Ok(k);
            }
            Some(Action::CrashAfterBytes(n)) => {
                if self.write_pos >= n {
                    self.write_dead = true;
                    return Err(gone());
                }
                let room = (n - self.write_pos).min(buf.len() as u64) as usize;
                let k = self.inner.write(&buf[..room])?;
                self.write_pos += k as u64;
                if self.write_pos >= n {
                    self.write_dead = true;
                }
                return Ok(k);
            }
            _ => {}
        }
        let k = self.inner.write(buf)?;
        self.write_pos += k as u64;
        Ok(k)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.write_dead {
            return Err(gone());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_eval::failpoints;
    use std::time::Duration;

    #[test]
    fn read_crash_cuts_the_inbound_stream_at_the_exact_byte() {
        let _guard = failpoints::scoped();
        failpoints::configure(SITE_READ, Action::CrashAfterBytes(5));
        let mut s = FaultStream::new(&b"HELLO world"[..]);
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"HELLO");
    }

    #[test]
    fn write_crash_delivers_a_prefix_then_fails_permanently() {
        let _guard = failpoints::scoped();
        failpoints::configure(SITE_WRITE, Action::CrashAfterBytes(4));
        let mut sink = Vec::new();
        let mut s = FaultStream::new(&mut sink);
        let err = s.write_all(b"OK epoch 3\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.write_all(b"x").is_err(), "stays dead");
        assert_eq!(sink, b"OK e");
    }

    #[test]
    fn short_write_persists_k_bytes_then_breaks() {
        let _guard = failpoints::scoped();
        failpoints::configure(SITE_WRITE, Action::ShortWrite(2));
        let mut sink = Vec::new();
        let mut s = FaultStream::new(&mut sink);
        assert_eq!(s.write(b"OK pong\n").unwrap(), 2);
        assert_eq!(
            s.write(b"more").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(sink, b"OK");
    }

    #[test]
    fn sleep_delays_but_does_not_corrupt() {
        let _guard = failpoints::scoped();
        failpoints::configure(SITE_WRITE, Action::Sleep(Duration::from_millis(1)));
        let mut sink = Vec::new();
        let mut s = FaultStream::new(&mut sink);
        s.write_all(b"OK pong\n").unwrap();
        assert_eq!(sink, b"OK pong\n");
    }
}
