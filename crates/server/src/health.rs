//! The server state machine: `Healthy → Degraded(read-only) → Healthy`.
//!
//! The write path degrades instead of dying. When the durable layer poisons
//! (a commit failed after disk may have changed) the service flips to
//! [`ServerState::Degraded`]: every already-published epoch keeps serving
//! reads bit-identically, mutations answer `ERR DEGRADED <reason>`, and a
//! supervisor thread retries recovery with bounded jittered exponential
//! backoff. Recovery re-opens the snapshot/WAL pair — disk is authoritative,
//! and may legitimately be *ahead* of the last published epoch (the commit's
//! frame can be fully persisted even though the fsync result never came
//! back) — then republishes and flips back to [`ServerState::Healthy`].
//!
//! State changes are announced on a condvar so the supervisor (and tests)
//! can wait for transitions instead of spinning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the service is in its degradation cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerState {
    /// Reads and writes both serving.
    Healthy,
    /// Read-only: the durable writer failed and is being recovered.
    /// `reason` names the failed operation (shown in `ERR DEGRADED` lines).
    Degraded { reason: String },
}

impl ServerState {
    /// True in the degraded (read-only) state.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServerState::Degraded { .. })
    }
}

/// Shared health status: the current state plus transition counters.
#[derive(Debug)]
pub struct Health {
    state: Mutex<ServerState>,
    changed: Condvar,
    degradations: AtomicU64,
    heals: AtomicU64,
}

impl Default for Health {
    fn default() -> Health {
        Health {
            state: Mutex::new(ServerState::Healthy),
            changed: Condvar::new(),
            degradations: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        }
    }
}

impl Health {
    /// The current state (cloned; the service may move on immediately).
    pub fn state(&self) -> ServerState {
        self.state.lock().expect("health lock").clone()
    }

    /// True while the write path is down.
    pub fn is_degraded(&self) -> bool {
        self.state.lock().expect("health lock").is_degraded()
    }

    /// Enters the degraded state (idempotent: re-degrading while already
    /// degraded updates the reason but counts only the first transition).
    pub fn degrade(&self, reason: impl Into<String>) {
        let mut st = self.state.lock().expect("health lock");
        if !st.is_degraded() {
            self.degradations.fetch_add(1, Ordering::Relaxed);
        }
        *st = ServerState::Degraded {
            reason: reason.into(),
        };
        drop(st);
        self.changed.notify_all();
    }

    /// Returns to healthy after a successful recovery.
    pub fn heal(&self) {
        let mut st = self.state.lock().expect("health lock");
        if st.is_degraded() {
            self.heals.fetch_add(1, Ordering::Relaxed);
        }
        *st = ServerState::Healthy;
        drop(st);
        self.changed.notify_all();
    }

    /// Healthy→Degraded transitions so far.
    pub fn degradations(&self) -> u64 {
        self.degradations.load(Ordering::Relaxed)
    }

    /// Degraded→Healthy transitions so far.
    pub fn heals(&self) -> u64 {
        self.heals.load(Ordering::Relaxed)
    }

    /// Blocks until the state satisfies `pred` or `timeout` elapses; true
    /// when the predicate held. The supervisor and the chaos tests use this
    /// instead of polling loops.
    pub fn wait_for(&self, timeout: Duration, pred: impl Fn(&ServerState) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("health lock");
        loop {
            if pred(&st) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, deadline - now)
                .expect("health lock");
            st = guard;
        }
    }

    /// Supervisor wait: blocks until degraded or `stop` is set; false on
    /// stop. Polls the stop flag on a short timeout so shutdown never needs
    /// to race a notification.
    pub fn wait_degraded_or_stop(&self, stop: &std::sync::atomic::AtomicBool) -> bool {
        let mut st = self.state.lock().expect("health lock");
        loop {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            if st.is_degraded() {
                return true;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, Duration::from_millis(50))
                .expect("health lock");
            st = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn transitions_count_once_and_waits_observe_them() {
        let h = Health::default();
        assert_eq!(h.state(), ServerState::Healthy);
        h.degrade("commit: wal append");
        h.degrade("commit: wal append (again)");
        assert_eq!(h.degradations(), 1, "re-degrading counts once");
        assert!(h.is_degraded());
        h.heal();
        h.heal();
        assert_eq!(h.heals(), 1, "re-healing counts once");
        assert!(h.wait_for(Duration::from_millis(10), |s| !s.is_degraded()));
        assert!(!h.wait_for(Duration::from_millis(10), |s| s.is_degraded()));
    }

    #[test]
    fn supervisor_wait_wakes_on_degrade_and_on_stop() {
        let h = Arc::new(Health::default());
        let stop = Arc::new(AtomicBool::new(false));

        let waiter = {
            let (h, stop) = (h.clone(), stop.clone());
            std::thread::spawn(move || h.wait_degraded_or_stop(&stop))
        };
        h.degrade("io");
        assert!(waiter.join().unwrap(), "woke because degraded");

        h.heal();
        let waiter = {
            let (h, stop) = (h.clone(), stop.clone());
            std::thread::spawn(move || h.wait_degraded_or_stop(&stop))
        };
        stop.store(true, Ordering::SeqCst);
        assert!(!waiter.join().unwrap(), "woke because stopped");
    }
}
