//! The `alexander` CLI: load a Datalog file and answer its queries, or run
//! the long-lived query server (`alexander serve`).
//!
//! See [`alexander_core::cli::USAGE`] or run with `--help`.

use alexander_core::cli;
use alexander_server::{serve_tcp, serve_unix, QueryService, ServeHandle, ServerConfig};
use alexander_storage::Database;
use std::io::Read;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, opts) = match cli::parse_args(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(path) = path else {
        eprintln!("{}", cli::USAGE);
        std::process::exit(2);
    };
    let source = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    if opts.serve {
        serve(&source, &opts);
        return;
    }
    match cli::run(&source, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Runs the server until killed. Flag coherence was already validated by
/// `parse_args`; this only wires options into the service.
fn serve(source: &str, opts: &cli::CliOptions) {
    let program = match alexander_parser::parse(source) {
        Ok(p) => p.program,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut config = ServerConfig::default();
    if let Some(n) = opts.max_concurrent {
        config.max_concurrent = n;
    }
    if let Some(n) = opts.tenant_cap {
        config.tenant_cap = n;
    }
    if let Some(n) = opts.threads {
        config.threads = n;
    }
    let mut budget = alexander_eval::Budget::default();
    if let Some(ms) = opts.timeout_ms {
        budget = budget.with_timeout_ms(ms);
    }
    if let Some(n) = opts.max_facts {
        budget = budget.with_max_facts(n);
    }
    if let Some(n) = opts.max_rounds {
        budget = budget.with_max_rounds(n);
    }
    config.budget = budget;
    if let Some(name) = opts.strategy.as_deref() {
        match alexander_core::Strategy::ALL
            .into_iter()
            .find(|s| s.name() == name)
        {
            Some(s) => config.default_strategy = s,
            None => {
                eprintln!("unknown strategy `{name}`");
                std::process::exit(2);
            }
        }
    }

    let store = opts
        .snapshot
        .as_deref()
        .zip(opts.wal.as_deref())
        .map(|(s, w)| (std::path::PathBuf::from(s), std::path::PathBuf::from(w)));
    let service = match QueryService::open(
        program,
        Database::new(),
        store.as_ref().map(|(s, w)| (s.as_path(), w.as_path())),
        config,
    ) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let _handle: ServeHandle = if let Some(addr) = opts.listen.as_deref() {
        match serve_tcp(service, addr) {
            Ok(h) => {
                // invariant: serve_tcp always records the bound address.
                eprintln!("listening on tcp {}", h.tcp_addr().expect("bound"));
                h
            }
            Err(e) => {
                eprintln!("cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        // invariant: parse_args demands exactly one of --listen/--unix.
        let path = std::path::Path::new(opts.unix.as_deref().expect("validated"));
        match serve_unix(service, path) {
            Ok(h) => {
                eprintln!("listening on unix {}", path.display());
                h
            }
            Err(e) => {
                eprintln!("cannot listen on {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    };

    // Serve until the process is killed; `_handle` keeps the accept loop
    // alive for the whole lifetime.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
