//! The `alexander` CLI: load a Datalog file and answer its queries, or run
//! the long-lived query server (`alexander serve`).
//!
//! See [`alexander_core::cli::USAGE`] or run with `--help`.

use alexander_core::cli;
use alexander_server::{serve_tcp, serve_unix, QueryService, ServeHandle, ServerConfig};
use alexander_storage::Database;
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; the serve loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

// `signal(2)` directly — no libc crate in the dependency tree. The real
// handler type is `sighandler_t`; the return value may be SIG_DFL (null),
// so it is declared as a plain word, not a function pointer.
type SigHandler = extern "C" fn(i32);
extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    STOP.store(true, Ordering::SeqCst);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, opts) = match cli::parse_args(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(path) = path else {
        eprintln!("{}", cli::USAGE);
        std::process::exit(2);
    };
    let source = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    if opts.serve {
        serve(&source, &opts);
        return;
    }
    match cli::run(&source, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Runs the server until SIGTERM/SIGINT, then shuts down gracefully:
/// stop accepting, drain in-flight sessions with a deadline, take a final
/// checkpoint when healthy, remove the unix socket file. Flag coherence was
/// already validated by `parse_args`; this only wires options into the
/// service.
fn serve(source: &str, opts: &cli::CliOptions) {
    let program = match alexander_parser::parse(source) {
        Ok(p) => p.program,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut config = ServerConfig::default();
    if let Some(n) = opts.max_concurrent {
        config.max_concurrent = n;
    }
    if let Some(n) = opts.tenant_cap {
        config.tenant_cap = n;
    }
    if let Some(n) = opts.threads {
        config.threads = n;
    }
    if let Some(n) = opts.max_queue {
        config.max_queue = n;
    }
    if let Some(ms) = opts.idle_timeout_ms {
        config.idle_timeout = Some(Duration::from_millis(ms));
    }
    if let Some(ms) = opts.write_timeout_ms {
        config.write_timeout = Some(Duration::from_millis(ms));
    }
    let mut budget = alexander_eval::Budget::default();
    if let Some(ms) = opts.timeout_ms {
        budget = budget.with_timeout_ms(ms);
    }
    if let Some(n) = opts.max_facts {
        budget = budget.with_max_facts(n);
    }
    if let Some(n) = opts.max_rounds {
        budget = budget.with_max_rounds(n);
    }
    config.budget = budget;
    if let Some(name) = opts.strategy.as_deref() {
        match alexander_core::Strategy::ALL
            .into_iter()
            .find(|s| s.name() == name)
        {
            Some(s) => config.default_strategy = s,
            None => {
                eprintln!("unknown strategy `{name}`");
                std::process::exit(2);
            }
        }
    }

    let store = opts
        .snapshot
        .as_deref()
        .zip(opts.wal.as_deref())
        .map(|(s, w)| (std::path::PathBuf::from(s), std::path::PathBuf::from(w)));
    let service = match QueryService::open(
        program,
        Database::new(),
        store.as_ref().map(|(s, w)| (s.as_path(), w.as_path())),
        config,
    ) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let handle: ServeHandle = if let Some(addr) = opts.listen.as_deref() {
        match serve_tcp(service.clone(), addr) {
            Ok(h) => {
                // invariant: serve_tcp always records the bound address.
                eprintln!("listening on tcp {}", h.tcp_addr().expect("bound"));
                h
            }
            Err(e) => {
                eprintln!("cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        // invariant: parse_args demands exactly one of --listen/--unix.
        let path = std::path::Path::new(opts.unix.as_deref().expect("validated"));
        match serve_unix(service.clone(), path) {
            Ok(h) => {
                eprintln!("listening on unix {}", path.display());
                h
            }
            Err(e) => {
                eprintln!("cannot listen on {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    };

    // Serve until a signal arrives; `handle` keeps the accept loop alive.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("shutting down: draining sessions");
    if !handle.shutdown_graceful(Duration::from_secs(5)) {
        eprintln!("shutdown: some sessions did not drain within the deadline");
    }
    // A final checkpoint bounds the next start's WAL replay. Skipped (with
    // a note, not a failure) when the service is degraded, has uncommitted
    // mutations, or is in-memory.
    match service.checkpoint() {
        Ok(true) => eprintln!("shutdown: final checkpoint taken"),
        Ok(false) => {}
        Err(e) => eprintln!("shutdown: checkpoint skipped: {e}"),
    }
}
