//! Immutable epochs: one frozen view of the database per committed batch.
//!
//! An [`Epoch`] owns an [`Engine`] built over a copy-on-write clone of the
//! EDB at publication time — storage relations are `Arc`-backed, so the
//! clone is O(#relations), not O(facts), and later writer mutations copy
//! only the relations they touch. Readers *pin* the current epoch (clone an
//! `Arc`) and keep evaluating against it no matter how many newer epochs
//! commit mid-query; the epoch is freed when its last pinned query drops.

use alexander_core::Engine;
use std::sync::{Arc, RwLock};

/// One frozen, queryable view of the database.
#[derive(Debug)]
pub struct Epoch {
    generation: u64,
    engine: Engine,
}

impl Epoch {
    /// Wraps a fully-built engine as generation `generation`.
    pub fn new(generation: u64, engine: Engine) -> Epoch {
        Epoch { generation, engine }
    }

    /// The epoch's position in the commit order (0 = the opening state).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine over this epoch's frozen EDB. Queries clone it (cheap:
    /// copy-on-write EDB) to attach their own budget/threads, so one epoch
    /// serves any number of concurrent readers.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

/// The publication point: writers swap in new epochs, readers pin the
/// current one. Pinning is a read-lock + `Arc` clone — never blocked by a
/// running query, only by the (instant) swap itself.
#[derive(Debug)]
pub struct EpochStore {
    current: RwLock<Arc<Epoch>>,
}

impl EpochStore {
    /// Starts the chain at `epoch` (normally generation 0).
    pub fn new(epoch: Epoch) -> EpochStore {
        EpochStore {
            current: RwLock::new(Arc::new(epoch)),
        }
    }

    /// Pins the current epoch: the returned view stays valid (and
    /// bit-identical) for as long as the caller holds it, regardless of
    /// later publications.
    pub fn pin(&self) -> Arc<Epoch> {
        // invariant: lock poisoning is unreachable — no panicking code runs
        // under either lock (publish only swaps an Arc).
        self.current.read().expect("epoch lock").clone()
    }

    /// Publishes `engine` as the next generation and returns its number.
    /// In-flight queries keep their pinned epochs; new pins see this one.
    pub fn publish(&self, engine: Engine) -> u64 {
        let mut cur = self.current.write().expect("epoch lock");
        let generation = cur.generation() + 1;
        *cur = Arc::new(Epoch::new(generation, engine));
        generation
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current.read().expect("epoch lock").generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_core::Strategy;
    use alexander_parser::parse_atom;

    fn engine(facts: &str) -> Engine {
        Engine::from_source(&format!(
            "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y). {facts}"
        ))
        .unwrap()
    }

    #[test]
    fn pinned_epochs_survive_publications() {
        let store = EpochStore::new(Epoch::new(0, engine("par(a, b).")));
        let pinned = store.pin();
        assert_eq!(pinned.generation(), 0);

        let gen = store.publish(engine("par(a, b). par(b, c)."));
        assert_eq!(gen, 1);
        assert_eq!(store.generation(), 1);

        // The old pin still answers from the old world…
        let q = parse_atom("anc(a, X)").unwrap();
        let old = pinned.engine().query(&q, Strategy::Alexander).unwrap();
        assert_eq!(old.answers.len(), 1);
        // …while a fresh pin sees the new epoch.
        let new = store.pin().engine().query(&q, Strategy::Alexander).unwrap();
        assert_eq!(new.answers.len(), 2);
    }

    #[test]
    fn epoch_engines_share_relations_until_written() {
        // The cheap-clone property the whole design rests on: cloning the
        // engine for a request does not copy the EDB.
        let store = EpochStore::new(Epoch::new(0, engine("par(a, b).")));
        let epoch = store.pin();
        let request_engine = epoch.engine().clone();
        let pred = alexander_ir::Predicate::new("par", 2);
        assert!(request_engine
            .edb()
            .shares_relation(epoch.engine().edb(), pred));
    }
}
