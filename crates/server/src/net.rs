//! Listeners and session loops for the line protocol.
//!
//! One thread accepts, one detached thread per connection runs the session.
//! Everything polls with short timeouts against a shared shutdown flag, so
//! [`ServeHandle::shutdown`] stops the server without wedging on a blocked
//! `accept(2)` or `read(2)` — important for the in-process servers the soak
//! driver and tests host.

use crate::proto::{err_line, parse_request, Request};
use crate::service::{QueryService, ServerError};
use alexander_core::Strategy;
use alexander_parser::parse_atom;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked reads/accepts re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// A running server; dropping it (or calling [`ServeHandle::shutdown`])
/// stops the accept loop and lets session threads drain.
pub struct ServeHandle {
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServeHandle {
    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix-socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Stops accepting, signals sessions to finish, joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            t.join().ok();
        }
        if let Some(p) = self.unix_path.take() {
            std::fs::remove_file(p).ok();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Non-blocking accept abstracted over listener types.
trait Acceptor: Send + 'static {
    type Stream: Read + Write + Send + 'static;
    /// `Ok(None)` when no connection is pending right now.
    fn poll_accept(&self) -> io::Result<Option<Self::Stream>>;
}

impl Acceptor for TcpListener {
    type Stream = std::net::TcpStream;
    fn poll_accept(&self) -> io::Result<Option<Self::Stream>> {
        match self.accept() {
            Ok((s, _)) => {
                s.set_read_timeout(Some(POLL))?;
                // Responses are written as one buffered chunk; without
                // NODELAY, Nagle + delayed ACK can stall every reply ~40ms.
                s.set_nodelay(true)?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Acceptor for UnixListener {
    type Stream = std::os::unix::net::UnixStream;
    fn poll_accept(&self) -> io::Result<Option<Self::Stream>> {
        match self.accept() {
            Ok((s, _)) => {
                s.set_read_timeout(Some(POLL))?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Serves the protocol on a TCP address (`"127.0.0.1:0"` picks a port).
pub fn serve_tcp(service: Arc<QueryService>, addr: &str) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = spawn_accept_loop(listener, service, shutdown.clone());
    Ok(ServeHandle {
        shutdown,
        accept: Some(accept),
        tcp_addr: Some(local),
        unix_path: None,
    })
}

/// Serves the protocol on a unix socket. A stale socket file (nothing
/// accepting on it) is replaced; a path with a live server behind it is
/// refused with `AddrInUse` rather than stolen out from under it.
pub fn serve_unix(service: Arc<QueryService>, path: &Path) -> io::Result<ServeHandle> {
    if path.exists() {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} already has a live server", path.display()),
                ))
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                std::fs::remove_file(path)?;
            }
            Err(e) => return Err(e),
        }
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = spawn_accept_loop(listener, service, shutdown.clone());
    Ok(ServeHandle {
        shutdown,
        accept: Some(accept),
        tcp_addr: None,
        unix_path: Some(path.to_path_buf()),
    })
}

fn spawn_accept_loop<A: Acceptor>(
    listener: A,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.poll_accept() {
                Ok(Some(stream)) => {
                    let service = service.clone();
                    let shutdown = shutdown.clone();
                    std::thread::spawn(move || {
                        // A dropped connection is the client's business, not
                        // a server failure.
                        session(&service, stream, &shutdown).ok();
                    });
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                Err(_) => break,
            }
        }
    })
}

/// One connection's lifetime: read a line, answer it, until QUIT/EOF.
fn session<S: Read + Write>(
    service: &QueryService,
    stream: S,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut tenant = String::from("anon");
    let mut line = String::new();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let eof = match reader.read_line(&mut line) {
            Ok(0) => true,
            // read_line returns Ok without a trailing newline only at EOF.
            Ok(_) => !line.ends_with('\n'),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The poll timeout fired mid-line; any bytes already read
                // were appended to `line`. Keep them and keep accumulating —
                // clearing here would corrupt a request that straddles a
                // stall and desynchronise the reply stream.
                continue;
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            if eof {
                return Ok(());
            }
            line.clear();
            continue;
        }
        // Build the whole response first, then write it as one chunk: a
        // multi-line answer must not trickle out as per-line segments.
        buf.clear();
        let quit = respond(service, &mut tenant, &line, &mut buf)?;
        reader.get_mut().write_all(&buf)?;
        reader.get_mut().flush()?;
        line.clear();
        if quit || eof {
            return Ok(());
        }
    }
}

/// Handles one request line; returns `true` when the session should close.
fn respond<W: Write>(
    service: &QueryService,
    tenant: &mut String,
    line: &str,
    w: &mut W,
) -> io::Result<bool> {
    let mut quit = false;
    match parse_request(line) {
        Err(e) => writeln!(w, "{}", err_line(&e))?,
        Ok(Request::Hello { tenant: t }) => {
            *tenant = t;
            writeln!(w, "OK tenant {tenant} epoch {}", service.generation())?;
        }
        Ok(Request::Query { atom, strategy }) => {
            match run_query(service, tenant, &atom, strategy) {
                Ok(r) => {
                    for a in &r.answers {
                        writeln!(w, "ANSWER {a}")?;
                    }
                    if r.complete {
                        writeln!(w, "OK {} epoch {} complete", r.answers.len(), r.generation)?;
                    } else {
                        writeln!(
                            w,
                            "OK {} epoch {} partial: {}",
                            r.answers.len(),
                            r.generation,
                            r.completion
                        )?;
                    }
                }
                Err(e) => writeln!(w, "{}", err_line(&e.to_string()))?,
            }
        }
        Ok(Request::Insert { fact }) => match mutate(service, &fact, true) {
            Ok(n) => writeln!(w, "OK pending {n}")?,
            Err(e) => writeln!(w, "{}", err_line(&e.to_string()))?,
        },
        Ok(Request::Delete { fact }) => match mutate(service, &fact, false) {
            Ok(n) => writeln!(w, "OK pending {n}")?,
            Err(e) => writeln!(w, "{}", err_line(&e.to_string()))?,
        },
        Ok(Request::Commit) => match service.commit() {
            Ok(info) => writeln!(
                w,
                "OK epoch {} committed {}",
                info.generation, info.committed
            )?,
            Err(e) => writeln!(w, "{}", err_line(&e.to_string()))?,
        },
        Ok(Request::Epoch) => writeln!(w, "OK epoch {}", service.generation())?,
        Ok(Request::Ping) => writeln!(w, "OK pong")?,
        Ok(Request::Quit) => {
            writeln!(w, "OK bye")?;
            quit = true;
        }
    }
    w.flush()?;
    Ok(quit)
}

fn run_query(
    service: &QueryService,
    tenant: &str,
    atom: &str,
    strategy: Option<String>,
) -> Result<crate::service::QueryResponse, ServerError> {
    let query = parse_atom(atom).map_err(|e| ServerError::Parse(e.to_string()))?;
    let strategy = match strategy {
        None => None,
        Some(name) => Some(
            Strategy::ALL
                .into_iter()
                .find(|s| s.name() == name)
                .ok_or_else(|| ServerError::Parse(format!("unknown strategy `{name}`")))?,
        ),
    };
    service.query(tenant, &query, strategy)
}

fn mutate(service: &QueryService, fact: &str, insert: bool) -> Result<usize, ServerError> {
    let atom = parse_atom(fact).map_err(|e| ServerError::Parse(e.to_string()))?;
    if insert {
        service.insert(&atom)
    } else {
        service.delete(&atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServerConfig;
    use alexander_parser::parse;
    use alexander_storage::Database;

    fn service() -> Arc<QueryService> {
        let program =
            parse("anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y). par(adam, seth).")
                .unwrap()
                .program;
        Arc::new(
            QueryService::open(program, Database::new(), None, ServerConfig::default()).unwrap(),
        )
    }

    /// Drives one request through `respond` and returns the reply text.
    fn roundtrip(s: &QueryService, tenant: &mut String, line: &str) -> String {
        let mut out = Vec::new();
        respond(s, tenant, line, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn the_full_verb_set_responds_in_protocol_form() {
        let s = service();
        let mut tenant = String::from("anon");
        assert_eq!(
            roundtrip(&s, &mut tenant, "HELLO acme"),
            "OK tenant acme epoch 0\n"
        );
        assert_eq!(tenant, "acme");
        assert_eq!(roundtrip(&s, &mut tenant, "PING"), "OK pong\n");
        assert_eq!(roundtrip(&s, &mut tenant, "EPOCH"), "OK epoch 0\n");
        assert_eq!(
            roundtrip(&s, &mut tenant, "INSERT par(seth, enos)"),
            "OK pending 1\n"
        );
        assert_eq!(
            roundtrip(&s, &mut tenant, "COMMIT"),
            "OK epoch 1 committed 1\n"
        );
        let q = roundtrip(&s, &mut tenant, "QUERY anc(adam, X)");
        assert_eq!(
            q,
            "ANSWER anc(adam, enos)\nANSWER anc(adam, seth)\nOK 2 epoch 1 complete\n"
        );
        let q = roundtrip(&s, &mut tenant, "QUERY anc(adam, X) STRATEGY oldt");
        assert!(q.ends_with("OK 2 epoch 1 complete\n"), "{q}");
        assert_eq!(roundtrip(&s, &mut tenant, "QUIT"), "OK bye\n");
    }

    /// Input arrives in scripted fragments; an `Err` entry simulates the
    /// 50ms poll timeout firing mid-line.
    struct ScriptedStream {
        input: std::collections::VecDeque<io::Result<Vec<u8>>>,
        out: Arc<std::sync::Mutex<Vec<u8>>>,
    }

    impl Read for ScriptedStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.input.pop_front() {
                None => Ok(0),
                Some(Err(e)) => Err(e),
                Some(Ok(chunk)) => {
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
            }
        }
    }

    impl Write for ScriptedStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.out.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn a_request_straddling_read_timeouts_is_not_corrupted() {
        let s = service();
        let out = Arc::new(std::sync::Mutex::new(Vec::new()));
        let stream = ScriptedStream {
            input: std::collections::VecDeque::from([
                Ok(b"QUE".to_vec()),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll")),
                Ok(b"RY anc".to_vec()),
                Err(io::Error::new(io::ErrorKind::TimedOut, "poll")),
                Ok(b"(adam, X)\n".to_vec()),
                // EOF lands mid-line: the final partial request still runs.
                Ok(b"PING".to_vec()),
            ]),
            out: out.clone(),
        };
        let shutdown = AtomicBool::new(false);
        session(&s, stream, &shutdown).unwrap();
        let reply = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert_eq!(
            reply,
            "ANSWER anc(adam, seth)\nOK 1 epoch 0 complete\nOK pong\n"
        );
    }

    #[test]
    fn protocol_errors_are_err_lines_not_disconnects() {
        let s = service();
        let mut tenant = String::from("anon");
        for bad in [
            "EXPLODE",
            "QUERY anc(adam,",                     // unparseable atom
            "QUERY anc(adam, X) STRATEGY quantum", // unknown strategy
            "INSERT anc(a, b)",                    // intensional target
            "INSERT par(a, X)",                    // non-ground
        ] {
            let out = roundtrip(&s, &mut tenant, bad);
            assert!(out.starts_with("ERR "), "{bad}: {out}");
            assert_eq!(out.lines().count(), 1, "{bad}: {out}");
        }
    }
}
