//! Listeners and session loops for the line protocol.
//!
//! One thread accepts, one detached thread per connection runs the session.
//! Everything polls with short timeouts against a shared shutdown flag, so
//! [`ServeHandle::shutdown`] stops the server without wedging on a blocked
//! `accept(2)` or `read(2)` — important for the in-process servers the soak
//! driver and tests host.
//!
//! Sessions are defended against misbehaving peers: an idle timeout closes
//! silent connections (and, separately, connections stalled mid-request), a
//! per-write socket deadline disconnects clients that stop draining their
//! replies, reply buffers are capped (an oversized answer becomes an `ERR`
//! line, not unbounded memory), and a write failure (`EPIPE`, reset, timed
//! out) tears down *only* that session with a structured [`SessionEnd`]
//! reason — one log line, no panic, no per-byte spam. [`NetStats`] counts
//! every outcome so tests and operators can see what connections did.

use crate::health::ServerState;
use crate::proto::{err_line, parse_request, Request};
use crate::service::{QueryService, ServerError};
use alexander_core::Strategy;
use alexander_parser::parse_atom;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked reads/accepts re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Why a session ended. `Quit`/`Eof`/`Shutdown` are clean; the rest are
/// defects of the connection (and get exactly one log line each).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client said QUIT.
    Quit,
    /// The client closed the connection (clean EOF at a line boundary).
    Eof,
    /// The server is shutting down.
    Shutdown,
    /// No bytes for longer than the idle timeout.
    Idle,
    /// A request line started but never finished within the idle timeout
    /// (half-open socket or a peer trickling a frame forever).
    Stalled,
    /// The peer stopped draining replies; a socket write missed its
    /// deadline.
    SlowClient,
    /// The peer vanished mid-reply (`EPIPE` / connection reset).
    ClientGone,
    /// Some other read-side IO error.
    ReadError,
    /// Some other write-side IO error.
    WriteError,
}

impl SessionEnd {
    /// True for the outcomes worth a log line.
    pub fn is_abnormal(self) -> bool {
        !matches!(
            self,
            SessionEnd::Quit | SessionEnd::Eof | SessionEnd::Shutdown
        )
    }
}

/// Connection counters for one listener: how many sessions are live and how
/// every finished one ended.
#[derive(Debug, Default)]
pub struct NetStats {
    active: AtomicUsize,
    accepted: AtomicU64,
    quit: AtomicU64,
    eof: AtomicU64,
    shutdown: AtomicU64,
    idle: AtomicU64,
    stalled: AtomicU64,
    slow_client: AtomicU64,
    client_gone: AtomicU64,
    read_error: AtomicU64,
    write_error: AtomicU64,
}

impl NetStats {
    /// Sessions currently running.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Connections accepted since the listener started.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// How many sessions ended with `end`.
    pub fn ended(&self, end: SessionEnd) -> u64 {
        self.counter(end).load(Ordering::Relaxed)
    }

    fn counter(&self, end: SessionEnd) -> &AtomicU64 {
        match end {
            SessionEnd::Quit => &self.quit,
            SessionEnd::Eof => &self.eof,
            SessionEnd::Shutdown => &self.shutdown,
            SessionEnd::Idle => &self.idle,
            SessionEnd::Stalled => &self.stalled,
            SessionEnd::SlowClient => &self.slow_client,
            SessionEnd::ClientGone => &self.client_gone,
            SessionEnd::ReadError => &self.read_error,
            SessionEnd::WriteError => &self.write_error,
        }
    }

    /// Every session-end outcome with its wire name, for `STATS` lines.
    const ENDS: [(SessionEnd, &'static str); 9] = [
        (SessionEnd::Quit, "quit"),
        (SessionEnd::Eof, "eof"),
        (SessionEnd::Shutdown, "shutdown"),
        (SessionEnd::Idle, "idle"),
        (SessionEnd::Stalled, "stalled"),
        (SessionEnd::SlowClient, "slow_client"),
        (SessionEnd::ClientGone, "client_gone"),
        (SessionEnd::ReadError, "read_error"),
        (SessionEnd::WriteError, "write_error"),
    ];
}

/// A running server; dropping it (or calling [`ServeHandle::shutdown`])
/// stops the accept loop and lets session threads drain.
pub struct ServeHandle {
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    stats: Arc<NetStats>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServeHandle {
    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix-socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// This listener's connection counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stops accepting, signals sessions to finish, joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Graceful variant: stops accepting, then waits up to `drain` for
    /// in-flight sessions to finish before removing the socket file.
    /// Returns true when every session drained within the deadline.
    /// Sessions notice the flag at their next 50ms read poll; one blocked
    /// on a slow client's write may take up to the write deadline.
    pub fn shutdown_graceful(mut self, drain: Duration) -> bool {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            t.join().ok();
        }
        let deadline = Instant::now() + drain;
        while self.stats.active() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let drained = self.stats.active() == 0;
        if let Some(p) = self.unix_path.take() {
            std::fs::remove_file(p).ok();
        }
        drained
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            t.join().ok();
        }
        if let Some(p) = self.unix_path.take() {
            std::fs::remove_file(p).ok();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Non-blocking accept abstracted over listener types.
trait Acceptor: Send + 'static {
    type Stream: Read + Write + Send + 'static;
    /// `Ok(None)` when no connection is pending right now.
    fn poll_accept(&self, write_timeout: Option<Duration>) -> io::Result<Option<Self::Stream>>;
}

impl Acceptor for TcpListener {
    type Stream = std::net::TcpStream;
    fn poll_accept(&self, write_timeout: Option<Duration>) -> io::Result<Option<Self::Stream>> {
        match self.accept() {
            Ok((s, _)) => {
                s.set_read_timeout(Some(POLL))?;
                s.set_write_timeout(write_timeout)?;
                // Responses are written as one buffered chunk; without
                // NODELAY, Nagle + delayed ACK can stall every reply ~40ms.
                s.set_nodelay(true)?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Acceptor for UnixListener {
    type Stream = std::os::unix::net::UnixStream;
    fn poll_accept(&self, write_timeout: Option<Duration>) -> io::Result<Option<Self::Stream>> {
        match self.accept() {
            Ok((s, _)) => {
                s.set_read_timeout(Some(POLL))?;
                s.set_write_timeout(write_timeout)?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Serves the protocol on a TCP address (`"127.0.0.1:0"` picks a port).
pub fn serve_tcp(service: Arc<QueryService>, addr: &str) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(NetStats::default());
    let accept = spawn_accept_loop(listener, service, shutdown.clone(), stats.clone());
    Ok(ServeHandle {
        shutdown,
        accept: Some(accept),
        stats,
        tcp_addr: Some(local),
        unix_path: None,
    })
}

/// Serves the protocol on a unix socket. A stale socket file (nothing
/// accepting on it) is replaced; a path with a live server behind it is
/// refused with `AddrInUse` rather than stolen out from under it.
pub fn serve_unix(service: Arc<QueryService>, path: &Path) -> io::Result<ServeHandle> {
    if path.exists() {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} already has a live server", path.display()),
                ))
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                std::fs::remove_file(path)?;
            }
            Err(e) => return Err(e),
        }
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(NetStats::default());
    let accept = spawn_accept_loop(listener, service, shutdown.clone(), stats.clone());
    Ok(ServeHandle {
        shutdown,
        accept: Some(accept),
        stats,
        tcp_addr: None,
        unix_path: Some(path.to_path_buf()),
    })
}

fn spawn_accept_loop<A: Acceptor>(
    listener: A,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let write_timeout = service.config().write_timeout;
        while !shutdown.load(Ordering::SeqCst) {
            match listener.poll_accept(write_timeout) {
                Ok(Some(stream)) => {
                    let service = service.clone();
                    let shutdown = shutdown.clone();
                    let stats = stats.clone();
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    stats.active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        let end = session(&service, wrap_stream(stream), &shutdown, &stats);
                        stats.counter(end).fetch_add(1, Ordering::Relaxed);
                        stats.active.fetch_sub(1, Ordering::SeqCst);
                        if end.is_abnormal() {
                            // One structured line per abnormal teardown; a
                            // dropped connection is the client's business,
                            // not a server failure.
                            eprintln!("session closed: {end:?}");
                        }
                    });
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                Err(_) => break,
            }
        }
    })
}

/// Interposes the socket failpoints when they are compiled in.
fn wrap_stream<S: Read + Write>(stream: S) -> impl Read + Write {
    #[cfg(feature = "failpoints")]
    return crate::faults::FaultStream::new(stream);
    #[cfg(not(feature = "failpoints"))]
    stream
}

/// A reply buffer with a hard size cap: past the cap it stops storing and
/// remembers the overflow, and [`CappedBuf::take`] substitutes a one-line
/// `ERR` so a pathological answer can't balloon server memory (the query
/// itself is still bounded by the session budget).
struct CappedBuf {
    buf: Vec<u8>,
    cap: usize,
    overflowed: bool,
}

impl CappedBuf {
    fn new(cap: usize) -> CappedBuf {
        CappedBuf {
            buf: Vec::new(),
            cap: cap.max(256),
            overflowed: false,
        }
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.overflowed = false;
    }

    /// The bytes to put on the wire for this reply.
    fn wire(&mut self) -> &[u8] {
        if self.overflowed {
            self.buf.clear();
            self.buf.extend_from_slice(
                format!(
                    "ERR reply exceeds {} bytes; narrow the query or raise --max-reply-bytes\n",
                    self.cap
                )
                .as_bytes(),
            );
            self.overflowed = false;
        }
        &self.buf
    }
}

impl Write for CappedBuf {
    fn write(&mut self, chunk: &[u8]) -> io::Result<usize> {
        if !self.overflowed {
            if self.buf.len() + chunk.len() > self.cap {
                self.overflowed = true;
            } else {
                self.buf.extend_from_slice(chunk);
            }
        }
        // Report success either way: protocol formatting must finish so the
        // session can substitute the ERR line and keep running.
        Ok(chunk.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn classify_write_error(e: &io::Error) -> SessionEnd {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => SessionEnd::SlowClient,
        io::ErrorKind::BrokenPipe
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted => SessionEnd::ClientGone,
        _ => SessionEnd::WriteError,
    }
}

/// One connection's lifetime: read a line, answer it, until QUIT/EOF — or
/// until a deadline or the peer's misbehaviour ends it (see [`SessionEnd`]).
fn session<S: Read + Write>(
    service: &QueryService,
    stream: S,
    shutdown: &AtomicBool,
    net: &NetStats,
) -> SessionEnd {
    let idle_timeout = service.config().idle_timeout;
    let mut reply = CappedBuf::new(service.config().max_reply_bytes);
    let mut reader = BufReader::new(stream);
    let mut tenant = String::from("anon");
    let mut line = String::new();
    let mut last_progress = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return SessionEnd::Shutdown;
        }
        let before = line.len();
        let eof = match reader.read_line(&mut line) {
            Ok(0) => true,
            // read_line returns Ok without a trailing newline only at EOF.
            Ok(_) => !line.ends_with('\n'),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The poll timeout fired mid-line; any bytes already read
                // were appended to `line`. Keep them and keep accumulating —
                // clearing here would corrupt a request that straddles a
                // stall and desynchronise the reply stream.
                if line.len() > before {
                    last_progress = Instant::now();
                } else if let Some(limit) = idle_timeout {
                    if last_progress.elapsed() >= limit {
                        // Silent with an empty buffer = idle; silent with a
                        // half-read request = stalled mid-frame.
                        return if line.is_empty() {
                            SessionEnd::Idle
                        } else {
                            SessionEnd::Stalled
                        };
                    }
                }
                continue;
            }
            Err(_) => return SessionEnd::ReadError,
        };
        last_progress = Instant::now();
        if line.trim().is_empty() {
            if eof {
                return SessionEnd::Eof;
            }
            line.clear();
            continue;
        }
        // Build the whole response first, then write it as one chunk: a
        // multi-line answer must not trickle out as per-line segments.
        reply.clear();
        // invariant: CappedBuf never returns an IO error.
        let quit =
            respond(service, &mut tenant, &line, &mut reply, net).expect("infallible buffer");
        let wire = reply.wire();
        let wrote = reader
            .get_mut()
            .write_all(wire)
            .and_then(|()| reader.get_mut().flush());
        if let Err(e) = wrote {
            return classify_write_error(&e);
        }
        line.clear();
        if quit {
            return SessionEnd::Quit;
        }
        if eof {
            return SessionEnd::Eof;
        }
    }
}

/// The wire form of a service error. `BUSY` and `DEGRADED` carry machine-
/// readable markers clients key their retry behaviour off; everything else
/// is a flattened human-readable `ERR` line.
fn error_reply(e: &ServerError) -> String {
    match e {
        ServerError::Busy { retry_after_ms } => {
            format!("ERR BUSY retry-after-ms={retry_after_ms}")
        }
        ServerError::Degraded(reason) => err_line(&format!("DEGRADED {reason}")),
        other => err_line(&other.to_string()),
    }
}

/// Handles one request line; returns `true` when the session should close.
fn respond<W: Write>(
    service: &QueryService,
    tenant: &mut String,
    line: &str,
    w: &mut W,
    net: &NetStats,
) -> io::Result<bool> {
    let mut quit = false;
    match parse_request(line) {
        Err(e) => writeln!(w, "{}", err_line(&e))?,
        Ok(Request::Hello { tenant: t }) => {
            *tenant = t;
            writeln!(w, "OK tenant {tenant} epoch {}", service.generation())?;
        }
        Ok(Request::Query { atom, strategy }) => {
            match run_query(service, tenant, &atom, strategy) {
                Ok(r) => {
                    for a in &r.answers {
                        writeln!(w, "ANSWER {a}")?;
                    }
                    if r.complete {
                        writeln!(w, "OK {} epoch {} complete", r.answers.len(), r.generation)?;
                    } else {
                        writeln!(
                            w,
                            "OK {} epoch {} partial: {}",
                            r.answers.len(),
                            r.generation,
                            r.completion
                        )?;
                    }
                }
                Err(e) => writeln!(w, "{}", error_reply(&e))?,
            }
        }
        Ok(Request::Insert { fact }) => match mutate(service, &fact, true) {
            Ok(n) => writeln!(w, "OK pending {n}")?,
            Err(e) => writeln!(w, "{}", error_reply(&e))?,
        },
        Ok(Request::Delete { fact }) => match mutate(service, &fact, false) {
            Ok(n) => writeln!(w, "OK pending {n}")?,
            Err(e) => writeln!(w, "{}", error_reply(&e))?,
        },
        Ok(Request::Commit) => match service.commit() {
            Ok(info) => writeln!(
                w,
                "OK epoch {} committed {}",
                info.generation, info.committed
            )?,
            Err(e) => writeln!(w, "{}", error_reply(&e))?,
        },
        Ok(Request::Epoch) => writeln!(w, "OK epoch {}", service.generation())?,
        Ok(Request::Health) => match service.state() {
            ServerState::Healthy => {
                writeln!(w, "OK healthy epoch {}", service.generation())?;
            }
            ServerState::Degraded { reason } => {
                let flat = reason.replace('\n', "; ");
                writeln!(w, "OK degraded epoch {} {flat}", service.generation())?;
            }
        },
        Ok(Request::Stats) => {
            let n = write_stats(service, net, w)?;
            writeln!(w, "OK {n} epoch {}", service.generation())?;
        }
        Ok(Request::Ping) => writeln!(w, "OK pong")?,
        Ok(Request::Quit) => {
            writeln!(w, "OK bye")?;
            quit = true;
        }
    }
    w.flush()?;
    Ok(quit)
}

/// Writes the `STAT <section>.<key> <value>` lines for a `STATS` request:
/// this listener's connection counters ([`NetStats`]), the admission
/// controller's live occupancy and shed total, and the health state
/// machine's transition counts. Returns how many lines were written (the
/// terminal `OK` line echoes it, mirroring `QUERY`'s answer count).
fn write_stats<W: Write>(service: &QueryService, net: &NetStats, w: &mut W) -> io::Result<usize> {
    let adm = service.admission();
    let health = service.health();
    let mut stats: Vec<(String, u64)> = vec![
        ("net.active".into(), net.active() as u64),
        ("net.accepted".into(), net.accepted()),
    ];
    for (end, name) in NetStats::ENDS {
        stats.push((format!("net.{name}"), net.ended(end)));
    }
    stats.extend([
        ("admission.active".into(), adm.active() as u64),
        ("admission.waiting".into(), adm.waiting() as u64),
        ("admission.shed".into(), adm.shed_total()),
        ("health.degradations".into(), health.degradations()),
        ("health.heals".into(), health.heals()),
    ]);
    for (key, value) in &stats {
        writeln!(w, "STAT {key} {value}")?;
    }
    Ok(stats.len())
}

fn run_query(
    service: &QueryService,
    tenant: &str,
    atom: &str,
    strategy: Option<String>,
) -> Result<crate::service::QueryResponse, ServerError> {
    let query = parse_atom(atom).map_err(|e| ServerError::Parse(e.to_string()))?;
    let strategy = match strategy {
        None => None,
        Some(name) => Some(
            Strategy::ALL
                .into_iter()
                .find(|s| s.name() == name)
                .ok_or_else(|| ServerError::Parse(format!("unknown strategy `{name}`")))?,
        ),
    };
    service.query(tenant, &query, strategy)
}

fn mutate(service: &QueryService, fact: &str, insert: bool) -> Result<usize, ServerError> {
    let atom = parse_atom(fact).map_err(|e| ServerError::Parse(e.to_string()))?;
    if insert {
        service.insert(&atom)
    } else {
        service.delete(&atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServerConfig;
    use alexander_parser::parse;
    use alexander_storage::Database;

    fn service() -> Arc<QueryService> {
        let program =
            parse("anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y). par(adam, seth).")
                .unwrap()
                .program;
        Arc::new(
            QueryService::open(program, Database::new(), None, ServerConfig::default()).unwrap(),
        )
    }

    fn service_with(config: ServerConfig) -> Arc<QueryService> {
        let program =
            parse("anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y). par(adam, seth).")
                .unwrap()
                .program;
        Arc::new(QueryService::open(program, Database::new(), None, config).unwrap())
    }

    /// Drives one request through `respond` and returns the reply text.
    fn roundtrip(s: &QueryService, tenant: &mut String, line: &str) -> String {
        let mut out = Vec::new();
        respond(s, tenant, line, &mut out, &NetStats::default()).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn the_full_verb_set_responds_in_protocol_form() {
        let s = service();
        let mut tenant = String::from("anon");
        assert_eq!(
            roundtrip(&s, &mut tenant, "HELLO acme"),
            "OK tenant acme epoch 0\n"
        );
        assert_eq!(tenant, "acme");
        assert_eq!(roundtrip(&s, &mut tenant, "PING"), "OK pong\n");
        assert_eq!(roundtrip(&s, &mut tenant, "EPOCH"), "OK epoch 0\n");
        assert_eq!(roundtrip(&s, &mut tenant, "HEALTH"), "OK healthy epoch 0\n");
        assert_eq!(
            roundtrip(&s, &mut tenant, "INSERT par(seth, enos)"),
            "OK pending 1\n"
        );
        assert_eq!(
            roundtrip(&s, &mut tenant, "COMMIT"),
            "OK epoch 1 committed 1\n"
        );
        let q = roundtrip(&s, &mut tenant, "QUERY anc(adam, X)");
        assert_eq!(
            q,
            "ANSWER anc(adam, enos)\nANSWER anc(adam, seth)\nOK 2 epoch 1 complete\n"
        );
        let q = roundtrip(&s, &mut tenant, "QUERY anc(adam, X) STRATEGY oldt");
        assert!(q.ends_with("OK 2 epoch 1 complete\n"), "{q}");
        assert_eq!(roundtrip(&s, &mut tenant, "QUIT"), "OK bye\n");
    }

    #[test]
    fn stats_reports_every_counter_section_with_an_ok_terminal() {
        let s = service();
        let mut tenant = String::from("anon");
        let net = NetStats::default();
        net.accepted.fetch_add(3, Ordering::Relaxed);
        net.quit.fetch_add(2, Ordering::Relaxed);
        s.health().degrade("io");
        s.health().heal();
        let mut out = Vec::new();
        respond(&s, &mut tenant, "STATS", &mut out, &net).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let (stat_lines, terminal) = lines.split_at(lines.len() - 1);
        assert!(stat_lines.iter().all(|l| l.starts_with("STAT ")), "{text}");
        assert_eq!(terminal[0], format!("OK {} epoch 0", stat_lines.len()));
        for expected in [
            "STAT net.accepted 3",
            "STAT net.quit 2",
            "STAT net.active 0",
            "STAT admission.active 0",
            "STAT admission.shed 0",
            "STAT health.degradations 1",
            "STAT health.heals 1",
        ] {
            assert!(stat_lines.contains(&expected), "missing {expected}: {text}");
        }
    }

    #[test]
    fn a_shed_query_answers_err_busy_with_the_hint() {
        let s = service_with(ServerConfig {
            max_concurrent: 1,
            tenant_cap: 1,
            max_queue: 0,
            shed_retry_after_ms: 9,
            ..ServerConfig::default()
        });
        let _hog = s.admission().acquire("hog");
        let mut tenant = String::from("anon");
        let out = roundtrip(&s, &mut tenant, "QUERY anc(adam, X)");
        assert_eq!(out, "ERR BUSY retry-after-ms=9\n");
    }

    /// Input arrives in scripted fragments; an `Err` entry simulates the
    /// 50ms poll timeout firing mid-line.
    struct ScriptedStream {
        input: std::collections::VecDeque<io::Result<Vec<u8>>>,
        out: Arc<std::sync::Mutex<Vec<u8>>>,
    }

    impl Read for ScriptedStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.input.pop_front() {
                None => Ok(0),
                Some(Err(e)) => Err(e),
                Some(Ok(chunk)) => {
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
            }
        }
    }

    impl Write for ScriptedStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.out.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn a_request_straddling_read_timeouts_is_not_corrupted() {
        let s = service();
        let out = Arc::new(std::sync::Mutex::new(Vec::new()));
        let stream = ScriptedStream {
            input: std::collections::VecDeque::from([
                Ok(b"QUE".to_vec()),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll")),
                Ok(b"RY anc".to_vec()),
                Err(io::Error::new(io::ErrorKind::TimedOut, "poll")),
                Ok(b"(adam, X)\n".to_vec()),
                // EOF lands mid-line: the final partial request still runs.
                Ok(b"PING".to_vec()),
            ]),
            out: out.clone(),
        };
        let shutdown = AtomicBool::new(false);
        let end = session(&s, stream, &shutdown, &NetStats::default());
        assert_eq!(end, SessionEnd::Eof);
        let reply = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert_eq!(
            reply,
            "ANSWER anc(adam, seth)\nOK 1 epoch 0 complete\nOK pong\n"
        );
    }

    #[test]
    fn an_idle_session_is_closed_and_a_mid_frame_stall_is_distinguished() {
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_millis(0)),
            ..ServerConfig::default()
        };
        let s = service_with(config);
        // Only timeouts: the very first poll exceeds the zero idle budget.
        let stream = ScriptedStream {
            input: std::collections::VecDeque::from([Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "poll",
            ))]),
            out: Arc::new(std::sync::Mutex::new(Vec::new())),
        };
        let shutdown = AtomicBool::new(false);
        assert_eq!(
            session(&s, stream, &shutdown, &NetStats::default()),
            SessionEnd::Idle
        );

        // A half-read request line turns the same timeout into Stalled.
        let stream = ScriptedStream {
            input: std::collections::VecDeque::from([
                Ok(b"QUERY anc(".to_vec()),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll")),
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll")),
            ]),
            out: Arc::new(std::sync::Mutex::new(Vec::new())),
        };
        assert_eq!(
            session(&s, stream, &shutdown, &NetStats::default()),
            SessionEnd::Stalled
        );
    }

    /// Writes fail like a vanished peer after the first chunk.
    struct GonePeer {
        input: std::collections::VecDeque<Vec<u8>>,
    }

    impl Read for GonePeer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.input.pop_front() {
                None => Ok(0),
                Some(chunk) => {
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
            }
        }
    }

    impl Write for GonePeer {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "EPIPE"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn a_write_failure_ends_the_session_as_client_gone() {
        let s = service();
        let stream = GonePeer {
            input: std::collections::VecDeque::from([b"PING\n".to_vec()]),
        };
        let shutdown = AtomicBool::new(false);
        assert_eq!(
            session(&s, stream, &shutdown, &NetStats::default()),
            SessionEnd::ClientGone
        );
    }

    #[test]
    fn an_oversized_reply_becomes_an_err_line_not_unbounded_memory() {
        let mut capped = CappedBuf::new(300);
        for _ in 0..100 {
            writeln!(capped, "ANSWER p(aaaaaaaaaaaaaaaaaaaaaaaa)").unwrap();
        }
        writeln!(capped, "OK 100 epoch 0 complete").unwrap();
        let wire = capped.wire();
        let text = String::from_utf8(wire.to_vec()).unwrap();
        assert!(text.starts_with("ERR reply exceeds 300 bytes"), "{text}");
        assert_eq!(text.lines().count(), 1);
        // The buffer is reusable and small replies pass through untouched.
        capped.clear();
        writeln!(capped, "OK pong").unwrap();
        assert_eq!(capped.wire(), b"OK pong\n");
    }

    #[test]
    fn protocol_errors_are_err_lines_not_disconnects() {
        let s = service();
        let mut tenant = String::from("anon");
        for bad in [
            "EXPLODE",
            "QUERY anc(adam,",                     // unparseable atom
            "QUERY anc(adam, X) STRATEGY quantum", // unknown strategy
            "INSERT anc(a, b)",                    // intensional target
            "INSERT par(a, X)",                    // non-ground
        ] {
            let out = roundtrip(&s, &mut tenant, bad);
            assert!(out.starts_with("ERR "), "{bad}: {out}");
            assert_eq!(out.lines().count(), 1, "{bad}: {out}");
        }
    }
}
