//! The line-oriented wire protocol.
//!
//! Requests are single lines, verb first (case-insensitive), operands raw:
//!
//! ```text
//! HELLO <tenant>                     -> OK tenant <name> epoch <gen>
//! QUERY <atom> [STRATEGY <name>]    -> ANSWER <atom>… then
//!                                       OK <n> epoch <gen> <completion>
//! INSERT <fact>                      -> OK pending <n>
//! DELETE <fact>                      -> OK pending <n>
//! COMMIT                             -> OK epoch <gen> committed <n>
//! EPOCH                              -> OK epoch <gen>
//! HEALTH                             -> OK healthy epoch <gen>
//!                                     | OK degraded epoch <gen> <reason>
//! STATS                              -> STAT <section>.<key> <value>… then
//!                                       OK <n> epoch <gen>
//! PING                               -> OK pong
//! QUIT                               -> OK bye (connection closes)
//! ```
//!
//! Every response's final line starts with `OK` or `ERR` — that is the
//! whole framing contract. `ANSWER` lines only appear before a `QUERY`'s
//! terminal line, and `STAT` lines only before a `STATS` terminal line.
//! Error text is flattened to one line.

/// One parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Names the session's tenant for admission accounting.
    Hello { tenant: String },
    /// A query; atom text is parsed server-side so errors come back as
    /// `ERR` lines rather than dropped connections.
    Query {
        atom: String,
        strategy: Option<String>,
    },
    /// Buffer an insertion.
    Insert { fact: String },
    /// Buffer a deletion.
    Delete { fact: String },
    /// Commit the buffered batch, publishing a new epoch.
    Commit,
    /// Report the current generation.
    Epoch,
    /// Report the server state (healthy or degraded read-only).
    Health,
    /// Report operational counters: connection outcomes, admission and
    /// shedding, health transitions.
    Stats,
    /// Liveness check.
    Ping,
    /// Close the session.
    Quit,
}

/// Parses one request line. The verb is case-insensitive; operands keep
/// their exact text (atoms contain spaces and case matters inside them).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() {
        return Err("empty request".into());
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let need = |what: &str| -> Result<String, String> {
        if rest.is_empty() {
            Err(format!("{} needs {what}", verb.to_ascii_uppercase()))
        } else {
            Ok(rest.to_string())
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => Ok(Request::Hello {
            tenant: need("a tenant name")?,
        }),
        "QUERY" => {
            let text = need("an atom")?;
            let upper = text.to_ascii_uppercase();
            if upper == "STRATEGY" || upper.starts_with("STRATEGY ") {
                return Err("QUERY needs an atom before STRATEGY <name>".into());
            }
            if let Some(at) = strategy_keyword(&text) {
                let atom = text[..at].trim().to_string();
                let strategy = text[at + "STRATEGY".len()..].trim().to_string();
                if atom.is_empty() || strategy.is_empty() {
                    return Err("QUERY needs an atom before STRATEGY <name>".into());
                }
                Ok(Request::Query {
                    atom,
                    strategy: Some(strategy),
                })
            } else {
                Ok(Request::Query {
                    atom: text,
                    strategy: None,
                })
            }
        }
        "INSERT" => Ok(Request::Insert {
            fact: need("a ground fact")?,
        }),
        "DELETE" => Ok(Request::Delete {
            fact: need("a ground fact")?,
        }),
        "COMMIT" => Ok(Request::Commit),
        "EPOCH" => Ok(Request::Epoch),
        "HEALTH" => Ok(Request::Health),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!(
            "unknown verb `{other}`; one of: HELLO QUERY INSERT DELETE COMMIT EPOCH HEALTH STATS \
             PING QUIT"
        )),
    }
}

/// Byte offset of the last `STRATEGY` keyword (case-insensitive, mirroring
/// the verb) that stands as its own whitespace-delimited word *outside*
/// parentheses and quoted symbols. Atom argument text — including a quoted
/// constant like `'a strategy b'` — can therefore never be mis-split into a
/// truncated atom plus a bogus strategy name.
fn strategy_keyword(text: &str) -> Option<usize> {
    const KW: &[u8] = b"STRATEGY";
    let b = text.as_bytes();
    let mut depth = 0usize;
    let mut quoted = false;
    let mut at = None;
    for i in 0..b.len() {
        match b[i] {
            b'\'' => quoted = !quoted,
            b'(' if !quoted => depth += 1,
            b')' if !quoted => depth = depth.saturating_sub(1),
            _ => {}
        }
        if quoted
            || depth != 0
            || i == 0
            || !b[i - 1].is_ascii_whitespace()
            || i + KW.len() >= b.len()
        {
            continue;
        }
        if b[i..i + KW.len()].eq_ignore_ascii_case(KW) && b[i + KW.len()].is_ascii_whitespace() {
            at = Some(i);
        }
    }
    at
}

/// Flattens error text into the single-line `ERR` form.
pub fn err_line(msg: &str) -> String {
    let flat: String = msg
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("; ");
    format!("ERR {flat}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively_with_raw_operands() {
        assert_eq!(
            parse_request("hello acme").unwrap(),
            Request::Hello {
                tenant: "acme".into()
            }
        );
        assert_eq!(
            parse_request("QUERY anc(adam, X)").unwrap(),
            Request::Query {
                atom: "anc(adam, X)".into(),
                strategy: None
            }
        );
        assert_eq!(
            parse_request("query anc(adam, X) strategy oldt").unwrap(),
            Request::Query {
                atom: "anc(adam, X)".into(),
                strategy: Some("oldt".into())
            }
        );
        assert_eq!(
            parse_request("INSERT par(adam, seth)").unwrap(),
            Request::Insert {
                fact: "par(adam, seth)".into()
            }
        );
        assert_eq!(parse_request("  commit  ").unwrap(), Request::Commit);
        assert_eq!(parse_request("EPOCH").unwrap(), Request::Epoch);
        assert_eq!(parse_request("health").unwrap(), Request::Health);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn strategy_clause_only_binds_outside_parens_and_quotes() {
        // A quoted symbol containing the word ` strategy ` stays part of
        // the atom text.
        assert_eq!(
            parse_request("QUERY p('a strategy b')").unwrap(),
            Request::Query {
                atom: "p('a strategy b')".into(),
                strategy: None
            }
        );
        // …even when a real clause follows it.
        assert_eq!(
            parse_request("QUERY p('a strategy b') STRATEGY oldt").unwrap(),
            Request::Query {
                atom: "p('a strategy b')".into(),
                strategy: Some("oldt".into())
            }
        );
        // The word inside parentheses (argument position) does not bind.
        assert_eq!(
            parse_request("QUERY p(X, strategy )").unwrap(),
            Request::Query {
                atom: "p(X, strategy )".into(),
                strategy: None
            }
        );
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert!(parse_request("").is_err());
        assert!(parse_request("   ").is_err());
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("INSERT").is_err());
        assert!(parse_request("EXPLODE now").is_err());
        assert!(parse_request("QUERY STRATEGY oldt").is_err());
    }

    #[test]
    fn err_lines_are_single_lines() {
        let e = err_line("invalid program:\n  rule 3 is unsafe\n");
        assert_eq!(e, "ERR invalid program:; rule 3 is unsafe");
        assert!(!e.contains('\n'));
    }
}
