//! The line-oriented wire protocol.
//!
//! Requests are single lines, verb first (case-insensitive), operands raw:
//!
//! ```text
//! HELLO <tenant>                     -> OK tenant <name> epoch <gen>
//! QUERY <atom> [STRATEGY <name>]    -> ANSWER <atom>… then
//!                                       OK <n> epoch <gen> <completion>
//! INSERT <fact>                      -> OK pending <n>
//! DELETE <fact>                      -> OK pending <n>
//! COMMIT                             -> OK epoch <gen> committed <n>
//! EPOCH                              -> OK epoch <gen>
//! PING                               -> OK pong
//! QUIT                               -> OK bye (connection closes)
//! ```
//!
//! Every response's final line starts with `OK` or `ERR` — that is the
//! whole framing contract. `ANSWER` lines only appear before a `QUERY`'s
//! terminal line. Error text is flattened to one line.

/// One parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Names the session's tenant for admission accounting.
    Hello { tenant: String },
    /// A query; atom text is parsed server-side so errors come back as
    /// `ERR` lines rather than dropped connections.
    Query {
        atom: String,
        strategy: Option<String>,
    },
    /// Buffer an insertion.
    Insert { fact: String },
    /// Buffer a deletion.
    Delete { fact: String },
    /// Commit the buffered batch, publishing a new epoch.
    Commit,
    /// Report the current generation.
    Epoch,
    /// Liveness check.
    Ping,
    /// Close the session.
    Quit,
}

/// Parses one request line. The verb is case-insensitive; operands keep
/// their exact text (atoms contain spaces and case matters inside them).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() {
        return Err("empty request".into());
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let need = |what: &str| -> Result<String, String> {
        if rest.is_empty() {
            Err(format!("{} needs {what}", verb.to_ascii_uppercase()))
        } else {
            Ok(rest.to_string())
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => Ok(Request::Hello {
            tenant: need("a tenant name")?,
        }),
        "QUERY" => {
            let text = need("an atom")?;
            // A trailing `STRATEGY <name>` clause; atoms never contain the
            // bare word, but match case-insensitively to mirror the verb.
            let upper = text.to_ascii_uppercase();
            if upper == "STRATEGY" || upper.starts_with("STRATEGY ") {
                return Err("QUERY needs an atom before STRATEGY <name>".into());
            }
            if let Some(at) = upper.rfind(" STRATEGY ") {
                let atom = text[..at].trim().to_string();
                let strategy = text[at + " STRATEGY ".len()..].trim().to_string();
                if atom.is_empty() || strategy.is_empty() {
                    return Err("QUERY needs an atom before STRATEGY <name>".into());
                }
                Ok(Request::Query {
                    atom,
                    strategy: Some(strategy),
                })
            } else {
                Ok(Request::Query {
                    atom: text,
                    strategy: None,
                })
            }
        }
        "INSERT" => Ok(Request::Insert {
            fact: need("a ground fact")?,
        }),
        "DELETE" => Ok(Request::Delete {
            fact: need("a ground fact")?,
        }),
        "COMMIT" => Ok(Request::Commit),
        "EPOCH" => Ok(Request::Epoch),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!(
            "unknown verb `{other}`; one of: HELLO QUERY INSERT DELETE COMMIT EPOCH PING QUIT"
        )),
    }
}

/// Flattens error text into the single-line `ERR` form.
pub fn err_line(msg: &str) -> String {
    let flat: String = msg
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("; ");
    format!("ERR {flat}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively_with_raw_operands() {
        assert_eq!(
            parse_request("hello acme").unwrap(),
            Request::Hello {
                tenant: "acme".into()
            }
        );
        assert_eq!(
            parse_request("QUERY anc(adam, X)").unwrap(),
            Request::Query {
                atom: "anc(adam, X)".into(),
                strategy: None
            }
        );
        assert_eq!(
            parse_request("query anc(adam, X) strategy oldt").unwrap(),
            Request::Query {
                atom: "anc(adam, X)".into(),
                strategy: Some("oldt".into())
            }
        );
        assert_eq!(
            parse_request("INSERT par(adam, seth)").unwrap(),
            Request::Insert {
                fact: "par(adam, seth)".into()
            }
        );
        assert_eq!(parse_request("  commit  ").unwrap(), Request::Commit);
        assert_eq!(parse_request("EPOCH").unwrap(), Request::Epoch);
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert!(parse_request("").is_err());
        assert!(parse_request("   ").is_err());
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("INSERT").is_err());
        assert!(parse_request("EXPLODE now").is_err());
        assert!(parse_request("QUERY STRATEGY oldt").is_err());
    }

    #[test]
    fn err_lines_are_single_lines() {
        let e = err_line("invalid program:\n  rule 3 is unsafe\n");
        assert_eq!(e, "ERR invalid program:; rule 3 is unsafe");
        assert!(!e.contains('\n'));
    }
}
