//! Property: a query pinned to epoch N returns bit-identical answers whether
//! or not epochs N+1..N+k commit mid-query — at 1 and at 4 eval threads.
//!
//! The oracle is a fresh single-threaded [`Engine`] built over the exact EDB
//! of each generation; "bit-identical" means the rendered answer vectors are
//! equal as strings (the engine sorts and dedups, so equality is exact, not
//! set-ish).

use alexander_core::{Engine, Strategy};
use alexander_parser::{parse, parse_atom};
use alexander_server::{QueryService, ServerConfig};
use alexander_storage::Database;
use proptest::prelude::*;
use std::sync::Arc;

const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";

/// Chain EDB `par(n0,n1) … par(n{len-1},n{len})`.
fn chain(len: usize) -> Database {
    let mut db = Database::new();
    for i in 0..len {
        db.insert_atom(&parse_atom(&format!("par(n{i}, n{})", i + 1)).unwrap())
            .unwrap();
    }
    db
}

/// Expected answers at generation `g` (chain length `base + g`), computed by
/// an independent single-threaded engine.
fn oracle(base: usize, g: usize, query: &alexander_ir::Atom) -> Vec<String> {
    let program = parse(RULES).unwrap().program;
    let engine = Engine::new(program, chain(base + g)).unwrap();
    let r = engine.query(query, Strategy::Alexander).unwrap();
    assert!(r.report.completion.is_complete());
    r.answers.iter().map(|a| a.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pinned_reads_are_bit_identical_under_concurrent_commits(
        base in 2usize..10,
        commits in 1usize..5,
        t in 0usize..2,
    ) {
        let threads = [1usize, 4][t];
        let query = parse_atom("anc(n0, X)").unwrap();
        let oracles: Vec<Vec<String>> =
            (0..=commits).map(|g| oracle(base, g, &query)).collect();

        let program = parse(RULES).unwrap().program;
        let config = ServerConfig { threads, ..ServerConfig::default() };
        let service =
            Arc::new(QueryService::open(program, chain(base), None, config).unwrap());

        // Pin generation 0 before any writer activity.
        let pinned = service.pin();
        prop_assert_eq!(pinned.generation(), 0);

        // Writer: commit epochs 1..=commits while readers are in flight.
        let w = {
            let service = service.clone();
            std::thread::spawn(move || {
                for g in 1..=commits {
                    let edge = base + g;
                    service
                        .insert(&parse_atom(&format!("par(n{}, n{edge})", edge - 1)).unwrap())
                        .unwrap();
                    let info = service.commit().unwrap();
                    assert_eq!(info.generation, g as u64);
                }
            })
        };

        // Readers: every response must match the oracle for the generation
        // it reports — regardless of which epochs committed mid-query.
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let service = service.clone();
                let query = query.clone();
                let oracles = oracles.clone();
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let resp = service.query(&format!("tenant{r}"), &query, None).unwrap();
                        assert!(resp.complete, "{}", resp.completion);
                        assert_eq!(
                            resp.answers, oracles[resp.generation as usize],
                            "generation {} answers diverged from the oracle",
                            resp.generation
                        );
                    }
                })
            })
            .collect();
        w.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }

        // The epoch pinned before the commits still answers exactly as the
        // generation-0 oracle: publications never leaked into the pin.
        let frozen = pinned
            .engine()
            .clone()
            .with_threads(threads)
            .query(&query, Strategy::Alexander)
            .unwrap();
        let frozen: Vec<String> = frozen.answers.iter().map(|a| a.to_string()).collect();
        prop_assert_eq!(&frozen, &oracles[0]);

        // And the latest epoch matches the final oracle.
        let last = service.query("tenant0", &query, None).unwrap();
        prop_assert_eq!(last.generation, commits as u64);
        prop_assert_eq!(&last.answers, &oracles[commits]);
    }
}
