//! Degraded-mode integration tests (failpoints builds only): poison the
//! durable writer over the wire, watch the service go read-only without
//! dropping a single read, then heal it and verify disk truth won.
#![cfg(feature = "failpoints")]

use alexander_eval::failpoints::{self, Action};
use alexander_parser::parse;
use alexander_server::{serve_tcp, QueryService, ServerConfig, ServerError, ServerState};
use alexander_storage::Database;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";
const SITE_WAL: &str = "durable-wal-io";

fn store_paths(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    (
        dir.join(format!("alexander_degraded_{tag}_{pid}.snap")),
        dir.join(format!("alexander_degraded_{tag}_{pid}.wal")),
    )
}

fn durable_service(tag: &str) -> (Arc<QueryService>, PathBuf, PathBuf) {
    let (sp, wp) = store_paths(tag);
    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
    let program = parse(&format!("{RULES} par(a, b).")).unwrap().program;
    let config = ServerConfig {
        // Tight backoff: these tests wait on real heals.
        heal_backoff_ms: 5,
        heal_backoff_max_ms: 50,
        ..ServerConfig::default()
    };
    let s = QueryService::open(program, Database::new(), Some((&sp, &wp)), config).unwrap();
    (Arc::new(s), sp, wp)
}

/// Sends one request line and reads lines until the `OK`/`ERR` terminal.
fn exchange(conn: &mut BufReader<TcpStream>, line: &str) -> Vec<String> {
    writeln!(conn.get_mut(), "{line}").unwrap();
    conn.get_mut().flush().unwrap();
    let mut out = Vec::new();
    loop {
        let mut l = String::new();
        match conn.read_line(&mut l) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read: {e}"),
        }
        let l = l.trim_end().to_string();
        let terminal = l.starts_with("OK") || l.starts_with("ERR");
        out.push(l);
        if terminal {
            break;
        }
    }
    out
}

#[test]
fn a_poisoned_commit_degrades_to_read_only_then_heals_from_disk_truth() {
    let _fp = failpoints::scoped();
    let (service, sp, wp) = durable_service("fsync");
    let handle = serve_tcp(service.clone(), "127.0.0.1:0").unwrap();
    let mut conn = BufReader::new(TcpStream::connect(handle.tcp_addr().unwrap()).unwrap());

    // A clean commit first, so there is real committed state to preserve.
    assert_eq!(exchange(&mut conn, "INSERT par(b, c)"), ["OK pending 1"]);
    assert_eq!(exchange(&mut conn, "COMMIT"), ["OK epoch 1 committed 1"]);

    // Arm a fsync failure: the next commit's WAL bytes land on disk but
    // durability cannot be proven, so the writer must poison itself.
    failpoints::configure(SITE_WAL, Action::FsyncError);
    assert_eq!(exchange(&mut conn, "INSERT par(c, d)"), ["OK pending 1"]);
    let out = exchange(&mut conn, "COMMIT");
    assert_eq!(out.len(), 1);
    assert!(
        out[0].starts_with("ERR DEGRADED writer poisoned by commit"),
        "{out:?}"
    );
    assert!(service.health().degradations() >= 1);

    // The degraded window still serves epoch-pinned reads, over the wire.
    let out = exchange(&mut conn, "QUERY anc(a, X)");
    let last = out.last().unwrap();
    assert!(
        last.starts_with("OK ") && last.contains("complete"),
        "{out:?}"
    );
    assert!(out.contains(&"ANSWER anc(a, b)".to_string()), "{out:?}");

    // Disarm; the supervisor heals, republishes from disk, and stays up.
    failpoints::remove(SITE_WAL);
    assert!(
        service.wait_for_healthy(Duration::from_secs(5)),
        "supervisor must heal once the fault is lifted"
    );
    assert_eq!(service.state(), ServerState::Healthy);
    assert!(service.health().heals() >= 1);

    // Disk truth won: the fsync-failed batch *had* persisted its bytes, so
    // recovery replays it — `par(c, d)` is there even though its commit
    // answered ERR.
    let out = exchange(&mut conn, "QUERY anc(a, X)");
    assert!(out.contains(&"ANSWER anc(a, d)".to_string()), "{out:?}");

    // And the writer accepts mutations again.
    assert_eq!(exchange(&mut conn, "INSERT par(d, e)"), ["OK pending 1"]);
    let out = exchange(&mut conn, "COMMIT");
    assert!(
        out[0].starts_with("OK epoch ") && out[0].ends_with("committed 1"),
        "{out:?}"
    );
    let out = exchange(&mut conn, "QUERY anc(a, X)");
    assert!(out.contains(&"ANSWER anc(a, e)".to_string()), "{out:?}");

    handle.shutdown();
    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
}

#[test]
fn a_torn_wal_append_loses_only_the_in_flight_batch() {
    let _fp = failpoints::scoped();
    let (service, sp, wp) = durable_service("torn");
    use alexander_parser::parse_atom;

    service.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
    service.commit().unwrap();

    // Crash one byte into the next append: a torn frame recovery must cut.
    let wal_len = service.durable_wal_len().unwrap();
    failpoints::configure(SITE_WAL, Action::CrashAfterBytes(wal_len + 1));
    service.insert(&parse_atom("par(c, d)").unwrap()).unwrap();
    let err = service.commit().unwrap_err();
    assert!(matches!(err, ServerError::Degraded(_)), "{err}");

    failpoints::remove(SITE_WAL);
    assert!(service.wait_for_healthy(Duration::from_secs(5)));

    // The committed chain survived; the torn batch is gone whole — a
    // committed-batch boundary, not a byte-level prefix.
    let q = parse_atom("anc(a, X)").unwrap();
    let r = service.query("t", &q, None).unwrap();
    assert_eq!(r.answers, ["anc(a, b)", "anc(a, c)"]);

    // Mutations flow again and land after the preserved history.
    service.insert(&parse_atom("par(c, z)").unwrap()).unwrap();
    service.commit().unwrap();
    let r = service.query("t", &q, None).unwrap();
    assert_eq!(r.answers, ["anc(a, b)", "anc(a, c)", "anc(a, z)"]);

    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
}

#[test]
fn mutations_answer_err_degraded_while_poisoned_and_the_buffer_is_dropped() {
    let _fp = failpoints::scoped();
    let (service, sp, wp) = durable_service("reject");
    use alexander_parser::parse_atom;

    // The failing commit itself must surface as Degraded (not a bare IO
    // error), its batch must be dropped whole, and reads must keep serving
    // the published epoch throughout.
    let wal_len = service.durable_wal_len().unwrap();
    failpoints::configure(SITE_WAL, Action::CrashAfterBytes(wal_len + 1));
    service.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
    let err = service.commit().unwrap_err();
    assert!(matches!(err, ServerError::Degraded(_)), "{err}");
    assert_eq!(service.pending(), 0, "a failed commit drops its batch");

    // Reads serve in every state — the epoch store is untouched.
    let q = parse_atom("anc(a, X)").unwrap();
    assert_eq!(service.query("t", &q, None).unwrap().answers, ["anc(a, b)"]);

    failpoints::remove(SITE_WAL);
    assert!(service.wait_for_healthy(Duration::from_secs(5)));
    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
}
