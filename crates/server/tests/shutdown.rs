//! Graceful shutdown of the real `alexander serve` binary: SIGTERM must
//! drain sessions, take a final checkpoint (truncating the WAL), remove the
//! unix socket file, and exit zero.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y). par(a, b).";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("alexander_shutdown_{name}_{}", std::process::id()))
}

/// Sends one request line and reads lines until the `OK`/`ERR` terminal.
fn exchange(conn: &mut BufReader<UnixStream>, line: &str) -> Vec<String> {
    writeln!(conn.get_mut(), "{line}").unwrap();
    conn.get_mut().flush().unwrap();
    let mut out = Vec::new();
    loop {
        let mut l = String::new();
        match conn.read_line(&mut l) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read: {e}"),
        }
        let l = l.trim_end().to_string();
        let terminal = l.starts_with("OK") || l.starts_with("ERR");
        out.push(l);
        if terminal {
            break;
        }
    }
    out
}

fn wait_for_socket(path: &PathBuf, server: &mut Child) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        if let Some(status) = server.try_wait().expect("try_wait") {
            panic!("server exited early: {status}");
        }
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_drains_checkpoints_and_removes_the_socket() {
    let program = tmp("prog.dl");
    let sock = tmp("srv.sock");
    let snap = tmp("store.snap");
    let wal = tmp("store.wal");
    for p in [&sock, &snap, &wal] {
        std::fs::remove_file(p).ok();
    }
    std::fs::write(&program, RULES).unwrap();

    let mut server = Command::new(env!("CARGO_BIN_EXE_alexander"))
        .arg("serve")
        .arg(&program)
        .arg("--unix")
        .arg(&sock)
        .arg("--snapshot")
        .arg(&snap)
        .arg("--wal")
        .arg(&wal)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");

    // Commit one batch so the WAL holds a frame the final checkpoint must
    // fold into the snapshot.
    let stream = wait_for_socket(&sock, &mut server);
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut conn = BufReader::new(stream);
    assert_eq!(exchange(&mut conn, "INSERT par(b, c)"), ["OK pending 1"]);
    assert_eq!(exchange(&mut conn, "COMMIT"), ["OK epoch 1 committed 1"]);
    assert_eq!(exchange(&mut conn, "QUIT"), ["OK bye"]);
    drop(conn);
    let wal_before = std::fs::metadata(&wal).expect("wal exists").len();

    // SIGTERM, then the exit must be clean and prompt.
    let pid = server.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(s) = server.try_wait().expect("try_wait") {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit within 10s of SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        status.success(),
        "graceful shutdown must exit zero: {status}"
    );

    let mut stderr = String::new();
    server
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        stderr.contains("shutting down: draining sessions"),
        "missing drain notice in: {stderr}"
    );
    assert!(
        stderr.contains("final checkpoint taken"),
        "missing checkpoint notice in: {stderr}"
    );

    // The socket file is gone, and the checkpoint truncated the WAL to its
    // bare header (the committed batch now lives in the snapshot).
    assert!(!sock.exists(), "socket file must be removed on shutdown");
    let wal_after = std::fs::metadata(&wal).expect("wal persists").len();
    assert!(
        wal_after < wal_before,
        "final checkpoint must truncate the WAL ({wal_before} -> {wal_after} bytes)"
    );
    assert!(snap.exists(), "checkpoint must write the snapshot");

    for p in [&program, &snap, &wal] {
        std::fs::remove_file(p).ok();
    }
}
