//! Admission fairness under tenant churn: many threads admit, block, shed,
//! and release against a small cap while tenants come and go. Whatever the
//! interleaving, quiescence must leave no slot leaked — zero active, zero
//! waiting, and **zero tracked tenants** (a leaked per-tenant entry is how a
//! long-lived server slowly locks a tenant out).

use alexander_server::Admission;
use proptest::prelude::*;
use std::sync::Arc;

/// Cheap thread-local xorshift so worker schedules differ per case without
/// a `rand` dependency.
fn step(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Runs `threads` workers doing `ops` mixed admissions each, then asserts
/// the admission gate drained completely.
fn churn(threads: usize, global_cap: usize, tenant_cap: usize, max_queue: usize, seed: u64) {
    const OPS: usize = 60;
    let adm = Arc::new(Admission::new(global_cap, tenant_cap, max_queue).with_retry_after_ms(1));
    let tenants = ["alpha", "beta", "gamma", "delta", "omega"];
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let adm = adm.clone();
            std::thread::spawn(move || {
                let mut rng = seed
                    .wrapping_add(t as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut admitted = 0usize;
                let mut shed = 0usize;
                for _ in 0..OPS {
                    let tenant = tenants[(step(&mut rng) % tenants.len() as u64) as usize];
                    match step(&mut rng) % 3 {
                        // Block until a slot frees (the query path's shape
                        // when the queue has room).
                        0 => {
                            let g = adm.admit(tenant).or_else(|_| adm.admit(tenant));
                            match g {
                                Ok(_g) => {
                                    admitted += 1;
                                    std::thread::yield_now();
                                }
                                Err(b) => {
                                    shed += 1;
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        b.retry_after_ms.min(2),
                                    ));
                                }
                            }
                        }
                        // Unbounded blocking acquire.
                        1 => {
                            let _g = adm.acquire(tenant);
                            std::thread::yield_now();
                            admitted += 1;
                        }
                        // Opportunistic: give up instantly when full.
                        _ => {
                            if let Some(_g) = adm.try_acquire(tenant) {
                                admitted += 1;
                            }
                        }
                    }
                }
                (admitted, shed)
            })
        })
        .collect();

    let mut admitted = 0usize;
    for w in workers {
        let (a, _) = w.join().expect("worker");
        admitted += a;
    }
    assert!(admitted > 0, "the gate must have admitted someone");

    // Quiescence: every slot returned, every queue entry gone, and — the
    // leak this test exists for — every per-tenant count evicted.
    assert_eq!(adm.active(), 0, "active slots leaked");
    assert_eq!(adm.waiting(), 0, "queue entries leaked");
    assert_eq!(adm.tracked_tenants(), 0, "per-tenant slots leaked");

    // The gate still works after the storm: a full cap's worth of admits.
    let guards: Vec<_> = (0..global_cap.min(tenant_cap))
        .map(|_| adm.admit("after").expect("fresh admits"))
        .collect();
    assert_eq!(adm.active(), guards.len());
    drop(guards);
    assert_eq!(adm.active(), 0);
    assert_eq!(adm.tracked_tenants(), 0);
}

proptest! {
    // Threads are real OS threads: keep the case count modest and the
    // per-case work bounded.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn four_threads_never_leak_slots(
        global_cap in 1usize..4,
        tenant_cap in 1usize..4,
        max_queue in 0usize..6,
        seed in 0u64..u64::MAX,
    ) {
        churn(4, global_cap, tenant_cap, max_queue, seed);
    }

    #[test]
    fn eight_threads_never_leak_slots(
        global_cap in 1usize..6,
        tenant_cap in 1usize..6,
        max_queue in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        churn(8, global_cap, tenant_cap, max_queue, seed);
    }
}
