//! End-to-end serving tests: the TCP listener and the durable writer, both
//! driven exactly as a client would.

use alexander_parser::{parse, parse_atom};
use alexander_server::{serve_tcp, serve_unix, QueryService, ServerConfig, SessionEnd};
use alexander_storage::Database;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";

fn service(extra: &str) -> Arc<QueryService> {
    let program = parse(&format!("{RULES} {extra}")).unwrap().program;
    Arc::new(QueryService::open(program, Database::new(), None, ServerConfig::default()).unwrap())
}

/// Sends one request line and reads lines until the `OK`/`ERR` terminal.
fn exchange<S: std::io::Read + Write>(reader: &mut BufReader<S>, line: &str) -> Vec<String> {
    writeln!(reader.get_mut(), "{line}").unwrap();
    reader.get_mut().flush().unwrap();
    let mut out = Vec::new();
    loop {
        let mut l = String::new();
        match reader.read_line(&mut l) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read: {e}"),
        }
        let l = l.trim_end().to_string();
        let terminal = l.starts_with("OK") || l.starts_with("ERR");
        out.push(l);
        if terminal {
            break;
        }
    }
    out
}

#[test]
fn tcp_sessions_speak_the_protocol_end_to_end() {
    let handle = serve_tcp(service("par(adam, seth)."), "127.0.0.1:0").unwrap();
    let addr = handle.tcp_addr().unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut conn = BufReader::new(stream);
    assert_eq!(
        exchange(&mut conn, "HELLO acme"),
        ["OK tenant acme epoch 0"]
    );
    assert_eq!(exchange(&mut conn, "PING"), ["OK pong"]);
    assert_eq!(
        exchange(&mut conn, "INSERT par(seth, enos)"),
        ["OK pending 1"]
    );
    assert_eq!(exchange(&mut conn, "COMMIT"), ["OK epoch 1 committed 1"]);
    assert_eq!(
        exchange(&mut conn, "QUERY anc(adam, X)"),
        [
            "ANSWER anc(adam, enos)",
            "ANSWER anc(adam, seth)",
            "OK 2 epoch 1 complete"
        ]
    );
    // Garbage stays in-band.
    let out = exchange(&mut conn, "QUERY anc(adam,");
    assert!(out[0].starts_with("ERR "), "{out:?}");
    assert_eq!(exchange(&mut conn, "QUIT"), ["OK bye"]);

    // A second connection sees the committed state (same epoch chain).
    let stream = TcpStream::connect(addr).unwrap();
    let mut conn = BufReader::new(stream);
    assert_eq!(exchange(&mut conn, "EPOCH"), ["OK epoch 1"]);
    handle.shutdown();
}

#[test]
fn stats_over_tcp_reports_listener_and_service_counters() {
    let handle = serve_tcp(service("par(adam, seth)."), "127.0.0.1:0").unwrap();
    let addr = handle.tcp_addr().unwrap();

    // One whole session ends cleanly first, so the quit counter is non-zero.
    {
        let mut conn = BufReader::new(TcpStream::connect(addr).unwrap());
        assert_eq!(exchange(&mut conn, "QUIT"), ["OK bye"]);
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.stats().ended(SessionEnd::Quit) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let mut conn = BufReader::new(TcpStream::connect(addr).unwrap());
    let out = exchange(&mut conn, "STATS");
    let (stats, terminal) = out.split_at(out.len() - 1);
    assert!(stats.iter().all(|l| l.starts_with("STAT ")), "{out:?}");
    assert_eq!(terminal[0], format!("OK {} epoch 0", stats.len()));
    let value = |key: &str| -> u64 {
        stats
            .iter()
            .find_map(|l| l.strip_prefix(&format!("STAT {key} ")))
            .unwrap_or_else(|| panic!("missing {key}: {out:?}"))
            .parse()
            .unwrap()
    };
    assert_eq!(value("net.accepted"), 2, "the quit session and this one");
    assert_eq!(value("net.quit"), 1);
    assert_eq!(value("net.active"), 1, "this session");
    assert_eq!(value("admission.active"), 0, "no query in flight");
    assert_eq!(value("admission.shed"), 0);
    assert_eq!(value("health.degradations"), 0);
    assert_eq!(value("health.heals"), 0);
    handle.shutdown();
}

#[test]
fn concurrent_tcp_clients_get_consistent_epoch_tagged_answers() {
    let handle = serve_tcp(service("par(n0, n1)."), "127.0.0.1:0").unwrap();
    let addr = handle.tcp_addr().unwrap();

    // Writer connection appends the chain one commit at a time; reader
    // threads hammer queries. Every response must equal the oracle for the
    // epoch it is tagged with — never a half-committed view.
    const COMMITS: usize = 8;
    let writer = std::thread::spawn(move || {
        let mut conn = BufReader::new(TcpStream::connect(addr).unwrap());
        for i in 1..=COMMITS {
            exchange(&mut conn, &format!("INSERT par(n{i}, n{})", i + 1));
            let out = exchange(&mut conn, "COMMIT");
            assert_eq!(out, [format!("OK epoch {i} committed 1")]);
        }
    });
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = BufReader::new(TcpStream::connect(addr).unwrap());
                for _ in 0..20 {
                    let out = exchange(&mut conn, "QUERY anc(n0, X)");
                    let last = out.last().unwrap();
                    assert!(last.starts_with("OK "), "{out:?}");
                    // "OK <n> epoch <g> complete"
                    let mut it = last.split_whitespace();
                    let n: usize = it.nth(1).unwrap().parse().unwrap();
                    let g: usize = it.nth(1).unwrap().parse().unwrap();
                    // Epoch g has the chain n0..n(g+1): g+1 answers.
                    assert_eq!(n, g + 1, "{out:?}");
                    assert_eq!(out.len(), n + 1, "{out:?}");
                    for (i, a) in out[..n].iter().enumerate() {
                        assert_eq!(a, &format!("ANSWER anc(n0, n{})", i + 1), "{out:?}");
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn unix_socket_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("alexander_srv_{}.sock", std::process::id()));
    let handle = serve_unix(service("par(adam, seth)."), &path).unwrap();
    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    let mut conn = BufReader::new(stream);
    assert_eq!(exchange(&mut conn, "PING"), ["OK pong"]);
    assert_eq!(
        exchange(&mut conn, "QUERY anc(adam, X)"),
        ["ANSWER anc(adam, seth)", "OK 1 epoch 0 complete"]
    );
    handle.shutdown();
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}

#[test]
fn unix_socket_refuses_a_live_server_but_replaces_a_stale_file() {
    let path = std::env::temp_dir().join(format!("alexander_srv_live_{}.sock", std::process::id()));
    std::fs::remove_file(&path).ok();
    let handle = serve_unix(service("par(adam, seth)."), &path).unwrap();
    // A second server must not steal the endpoint out from under the first.
    let err = match serve_unix(service("par(adam, seth)."), &path) {
        Ok(_) => panic!("binding over a live server must fail"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    handle.shutdown();

    // A stale socket file — left by a listener that died without cleanup —
    // is replaced.
    drop(std::os::unix::net::UnixListener::bind(&path).unwrap());
    assert!(path.exists());
    let handle = serve_unix(service("par(adam, seth)."), &path).unwrap();
    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    let mut conn = BufReader::new(stream);
    assert_eq!(exchange(&mut conn, "PING"), ["OK pong"]);
    handle.shutdown();
}

#[test]
fn a_client_vanishing_mid_reply_tears_down_only_its_session() {
    // A substantial chain so replies span multiple writes' worth of bytes
    // and evaluation leaves time for the peer's RST to land between them.
    let mut extra = String::new();
    for i in 0..256 {
        extra.push_str(&format!("par(m{i}, m{}). ", i + 1));
    }
    let handle = serve_tcp(service(&extra), "127.0.0.1:0").unwrap();
    let addr = handle.tcp_addr().unwrap();

    // The rude client pipelines several queries and hangs up without
    // reading a byte: the server's replies hit a closed peer.
    {
        let mut rude = TcpStream::connect(addr).unwrap();
        for _ in 0..4 {
            writeln!(rude, "QUERY anc(m0, X)").unwrap();
        }
        rude.flush().unwrap();
    } // dropped: FIN now, RST as soon as a reply reaches the dead socket

    // The teardown must be structured — a counted ClientGone/ReadError end,
    // not a panic — and must not take the listener down with it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let gone = |s: &alexander_server::NetStats| {
        s.ended(SessionEnd::ClientGone) + s.ended(SessionEnd::ReadError) + s.ended(SessionEnd::Eof)
    };
    while gone(handle.stats()) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        gone(handle.stats()) >= 1,
        "the abandoned session must end with a structured reason"
    );

    // Other sessions are untouched: a fresh client gets full service.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    let mut conn = BufReader::new(stream);
    assert_eq!(exchange(&mut conn, "PING"), ["OK pong"]);
    let out = exchange(&mut conn, "QUERY anc(m0, m256)");
    assert_eq!(out.last().unwrap(), "OK 1 epoch 0 complete", "{out:?}");
    handle.shutdown();
}

fn store_paths(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    (
        dir.join(format!("alexander_srv_{tag}_{pid}.snap")),
        dir.join(format!("alexander_srv_{tag}_{pid}.wal")),
    )
}

#[test]
fn durable_service_recovers_committed_epochs_across_restarts() {
    let (sp, wp) = store_paths("recover");
    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
    let program = parse(RULES).unwrap().program;
    let q = parse_atom("anc(a, X)").unwrap();

    {
        let mut edb = Database::new();
        edb.insert_atom(&parse_atom("par(a, b)").unwrap()).unwrap();
        let s = QueryService::open(
            program.clone(),
            edb,
            Some((&sp, &wp)),
            ServerConfig::default(),
        )
        .unwrap();
        s.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
        s.commit().unwrap();
        s.insert(&parse_atom("par(c, d)").unwrap()).unwrap();
        s.delete(&parse_atom("par(a, b)").unwrap()).unwrap();
        s.commit().unwrap();
        assert_eq!(s.generation(), 2);
        assert_eq!(s.query("t", &q, None).unwrap().answers.len(), 0);
    } // dropped without checkpoint: state lives in snapshot + WAL

    // A fresh open recovers: generation restarts at 0 but the data is the
    // committed state (insert survived, delete stuck).
    let s = QueryService::open(
        program,
        Database::new(),
        Some((&sp, &wp)),
        ServerConfig::default(),
    )
    .unwrap();
    assert_eq!(s.generation(), 0);
    assert_eq!(s.query("t", &q, None).unwrap().answers.len(), 0);
    let all = parse_atom("anc(b, X)").unwrap();
    assert_eq!(
        s.query("t", &all, None).unwrap().answers,
        ["anc(b, c)", "anc(b, d)"]
    );
    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
}

#[test]
fn half_present_durable_store_is_refused_not_wiped() {
    let (sp, wp) = store_paths("half");
    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
    let program = parse(RULES).unwrap().program;

    {
        let mut edb = Database::new();
        edb.insert_atom(&parse_atom("par(a, b)").unwrap()).unwrap();
        let s = QueryService::open(
            program.clone(),
            edb,
            Some((&sp, &wp)),
            ServerConfig::default(),
        )
        .unwrap();
        s.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
        s.commit().unwrap();
    }

    // Lose the WAL: opening must fail loudly, not recreate the store over
    // the surviving snapshot.
    std::fs::remove_file(&wp).unwrap();
    let before = std::fs::read(&sp).unwrap();
    let err = match QueryService::open(
        program.clone(),
        Database::new(),
        Some((&sp, &wp)),
        ServerConfig::default(),
    ) {
        Ok(_) => panic!("half-present pair (snapshot only) must be refused"),
        Err(e) => e,
    };
    assert!(
        matches!(err, alexander_server::ServerError::Rejected(_)),
        "{err}"
    );
    assert_eq!(
        std::fs::read(&sp).unwrap(),
        before,
        "the surviving snapshot must not be touched"
    );
    assert!(
        !wp.exists(),
        "no WAL may be created over a half-present pair"
    );

    // The mirror case: snapshot lost, WAL surviving.
    std::fs::remove_file(&sp).unwrap();
    std::fs::write(&wp, b"surviving wal").unwrap();
    let err = match QueryService::open(
        program,
        Database::new(),
        Some((&sp, &wp)),
        ServerConfig::default(),
    ) {
        Ok(_) => panic!("half-present pair (WAL only) must be refused"),
        Err(e) => e,
    };
    assert!(
        matches!(err, alexander_server::ServerError::Rejected(_)),
        "{err}"
    );
    assert_eq!(std::fs::read(&wp).unwrap(), b"surviving wal");
    std::fs::remove_file(&wp).ok();
}

#[test]
fn uncommitted_mutations_never_reach_any_epoch() {
    let s = service("par(a, b).");
    let q = parse_atom("anc(a, X)").unwrap();
    s.insert(&parse_atom("par(b, c)").unwrap()).unwrap();
    assert_eq!(s.pending(), 1);
    // Still epoch 0 — the buffered insert is invisible.
    let r = s.query("t", &q, None).unwrap();
    assert_eq!(r.generation, 0);
    assert_eq!(r.answers, ["anc(a, b)"]);
    s.commit().unwrap();
    assert_eq!(s.query("t", &q, None).unwrap().answers.len(), 2);
}
