//! CRC32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Hand-rolled because the build environment has no registry access. The
//! byte-at-a-time table walk checksums a snapshot body at memory speed
//! relative to the deserialisation that follows it; this is not a hot path.

/// The reflected polynomial used by zlib, PNG, ethernet.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"alexander");
        let mut data = *b"alexander";
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }
}
