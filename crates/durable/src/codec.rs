//! Little-endian byte codec shared by the snapshot and WAL formats.
//!
//! Writing appends to a `Vec<u8>`; reading goes through [`Cursor`], whose
//! every accessor bounds-checks against the *actual* bytes present before
//! touching them and returns a structured [`CodecError`] instead of
//! panicking. Variable-length fields (strings, row counts) are validated
//! against the remaining input before anything is allocated, so a corrupt
//! length field can neither OOM nor overrun — the worst a hostile file can
//! cost is one pass over its own bytes.

use std::fmt;

/// A structural decoding failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset (relative to the cursor's buffer) where decoding stopped.
    pub offset: u64,
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.detail)
    }
}

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string over 4 GiB"));
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, detail: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.offset(),
            detail: detail.into(),
        }
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated {what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.bytes(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        // invariant: `bytes` returned exactly 4 bytes, so the conversion
        // cannot fail.
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    pub fn i64(&mut self, what: &str) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string. The length is validated against
    /// the remaining input *before* the bytes are touched, so a corrupt
    /// length cannot allocate.
    pub fn str_(&mut self, what: &str) -> Result<&'a str, CodecError> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(self.err(format!(
                "{what} length {len} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        let raw = self.bytes(len, what)?;
        std::str::from_utf8(raw).map_err(|e| self.err(format!("{what} is not UTF-8: {e}")))
    }

    /// Validates that a caller-supplied element count is plausible for the
    /// bytes that remain: `count * min_elem_bytes <= remaining`. This is the
    /// guard that keeps a corrupt count field from driving a huge loop or a
    /// huge allocation.
    pub fn check_count(
        &self,
        count: u64,
        min_elem_bytes: u64,
        what: &str,
    ) -> Result<usize, CodecError> {
        let need = count.checked_mul(min_elem_bytes);
        match need {
            Some(n) if n <= self.remaining() as u64 => Ok(count as usize),
            _ => Err(self.err(format!(
                "{what} count {count} is impossible: needs at least {} bytes, {} remain",
                need.map_or("overflow".to_string(), |n| n.to_string()),
                self.remaining()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_str(&mut buf, "héllo");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8("a").unwrap(), 7);
        assert_eq!(c.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(c.i64("d").unwrap(), -42);
        assert_eq!(c.str_("e").unwrap(), "héllo");
        assert!(c.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut c = Cursor::new(&[1, 2]);
        let err = c.u32("field").unwrap_err();
        assert!(err.detail.contains("truncated field"), "{err}");
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn hostile_string_length_cannot_allocate() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // length claims 4 GiB
        let mut c = Cursor::new(&buf);
        let err = c.str_("name").unwrap_err();
        assert!(err.detail.contains("exceeds"), "{err}");
    }

    #[test]
    fn hostile_counts_are_rejected() {
        let c = Cursor::new(&[0u8; 16]);
        assert_eq!(c.check_count(4, 4, "rows").unwrap(), 4);
        assert!(c.check_count(5, 4, "rows").is_err());
        assert!(c.check_count(u64::MAX, 8, "rows").is_err(), "mul overflow");
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut c = Cursor::new(&buf);
        assert!(c.str_("s").unwrap_err().detail.contains("not UTF-8"));
    }
}
