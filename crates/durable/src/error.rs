//! Durability errors.
//!
//! Everything a snapshot/WAL reader can hit on arbitrary bytes is a value of
//! [`DurableError`] — corrupt input is *data*, never a panic. The one
//! deliberate asymmetry: a torn WAL **tail** (the file ends mid-frame, which
//! is exactly what a crash during an append leaves behind) is not an error
//! at all — the reader reports the valid prefix and the torn offset, and
//! recovery truncates it. Corruption *before* the tail (a checksum mismatch
//! with more data after it) can not be explained by a crash and is rejected.

use alexander_eval::EvalError;
use std::fmt;
use std::path::PathBuf;

/// Anything that can stop a snapshot write/read, a WAL append/replay, or a
/// recovery.
#[derive(Debug)]
pub enum DurableError {
    /// An operating-system IO failure (including injected crash faults).
    Io {
        /// What was being done: `"write"`, `"sync"`, `"open"`, `"rename"`, …
        op: &'static str,
        path: PathBuf,
        source: std::io::Error,
    },
    /// The file does not start with the expected magic bytes — it is not a
    /// snapshot/WAL at all (or the header itself was torn).
    BadMagic {
        path: PathBuf,
        expected: &'static str,
    },
    /// The file's format version is newer than this build understands.
    BadVersion {
        path: PathBuf,
        found: u32,
        supported: u32,
    },
    /// Structural corruption: a length field pointing past the end of the
    /// file, a checksum mismatch, an out-of-range string id, a duplicate
    /// row, an impossible record tag, … `offset` is the byte position the
    /// reader had reached.
    Corrupt {
        path: PathBuf,
        offset: u64,
        detail: String,
    },
    /// WAL replay reached the in-memory engine and was rejected there
    /// (e.g. a record targets an intensional predicate after the program
    /// changed underneath the log).
    Replay(EvalError),
    /// The engine refused to keep writing because an earlier commit or
    /// checkpoint failed half-way and disk and memory can no longer be
    /// proven to agree. `op` names the operation that tripped the poison
    /// (e.g. `"commit: wal append"`). The snapshot/WAL pair on disk is
    /// still recoverable — [`DurableEngine::recover`] is the documented
    /// escape hatch — but this handle will not append more batches.
    ///
    /// [`DurableEngine::recover`]: crate::DurableEngine::recover
    Poisoned {
        /// The operation whose failure poisoned the engine.
        op: &'static str,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { op, path, source } => {
                write!(f, "io error ({op}) on {}: {source}", path.display())
            }
            DurableError::BadMagic { path, expected } => {
                write!(f, "{} is not a {expected} file (bad magic)", path.display())
            }
            DurableError::BadVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{}: format version {found} is newer than supported {supported}",
                path.display()
            ),
            DurableError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "{} is corrupt at byte {offset}: {detail}",
                path.display()
            ),
            DurableError::Replay(e) => write!(f, "wal replay rejected: {e}"),
            DurableError::Poisoned { op } => write!(
                f,
                "durable engine poisoned by a failed {op}; \
                 recover from disk (DurableEngine::recover) to continue"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for DurableError {
    fn from(e: EvalError) -> DurableError {
        DurableError::Replay(e)
    }
}

impl DurableError {
    /// Shorthand for wrapping an IO failure with its operation and path.
    pub(crate) fn io(op: &'static str, path: &std::path::Path, source: std::io::Error) -> Self {
        DurableError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// Shorthand for a corruption report.
    pub(crate) fn corrupt(path: &std::path::Path, offset: u64, detail: impl Into<String>) -> Self {
        DurableError::Corrupt {
            path: path.to_path_buf(),
            offset,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let p = std::path::Path::new("/tmp/x.snap");
        let e = DurableError::io("write", p, std::io::Error::other("boom"));
        assert!(e.to_string().contains("write"), "{e}");
        assert!(e.to_string().contains("x.snap"), "{e}");
        let e = DurableError::corrupt(p, 42, "crc mismatch");
        assert!(e.to_string().contains("byte 42"), "{e}");
        let e = DurableError::BadMagic {
            path: p.to_path_buf(),
            expected: "snapshot",
        };
        assert!(e.to_string().contains("bad magic"), "{e}");
        let e = DurableError::BadVersion {
            path: p.to_path_buf(),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"), "{e}");
        let e = DurableError::Poisoned {
            op: "commit: wal append",
        };
        assert!(e.to_string().contains("poisoned"), "{e}");
        assert!(e.to_string().contains("commit: wal append"), "{e}");
        assert!(e.to_string().contains("recover"), "{e}");
    }
}
