//! Fault-aware file IO for the durability layer.
//!
//! All snapshot/WAL bytes flow through [`FaultFile`], a thin wrapper over
//! `std::fs::File` that tracks its stream position. In normal builds it is
//! exactly a file. With the test-only `failpoints` feature it consults the
//! evaluator's failpoint registry (`alexander_eval::failpoints`) before
//! every write and sync, and applies the IO-layer actions byte-exactly:
//!
//! * `CrashAfterBytes(n)` — bytes `[0, n)` of the stream persist; the write
//!   crossing offset `n` is truncated at it and the stream then fails
//!   permanently. Sweeping `n` over every offset of a reference run is the
//!   crash-point sweep: it simulates the process dying at every byte.
//! * `ShortWrite(k)` — the next write persists only its first `k` bytes,
//!   then the stream fails permanently.
//! * `FsyncError` — `sync` fails; writes are unaffected.
//! * `BitFlip { at, bit }` — the byte at stream offset `at` is flipped as
//!   it is written; no error is reported (silent corruption).
//!
//! A failed `FaultFile` stays failed: once a crash fault fires, every later
//! operation returns an error, exactly like file descriptors of a dead
//! process.

use crate::error::DurableError;
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The error kind used for injected faults (recognisable in tests).
pub const INJECTED: &str = "injected fault";

/// A position-tracking, fault-injectable append-only file handle.
pub struct FaultFile {
    file: File,
    path: PathBuf,
    /// Failpoint site consulted on every operation (e.g. `"durable-wal-io"`).
    /// Only read when fault injection is compiled in.
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    site: &'static str,
    /// Stream offset: bytes successfully written through this handle plus
    /// the offset it was opened at.
    pos: u64,
    /// Set after an injected crash; all later operations fail.
    dead: bool,
}

impl FaultFile {
    /// Creates (truncating) `path` for writing.
    pub fn create(path: &Path, site: &'static str) -> Result<FaultFile, DurableError> {
        let file = File::create(path).map_err(|e| DurableError::io("create", path, e))?;
        Ok(FaultFile {
            file,
            path: path.to_path_buf(),
            site,
            pos: 0,
            dead: false,
        })
    }

    /// Opens `path` for appending; the stream position starts at the current
    /// file length (fault offsets are absolute file offsets).
    pub fn open_append(path: &Path, site: &'static str) -> Result<FaultFile, DurableError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| DurableError::io("open", path, e))?;
        let pos = file
            .metadata()
            .map_err(|e| DurableError::io("stat", path, e))?
            .len();
        Ok(FaultFile {
            file,
            path: path.to_path_buf(),
            site,
            pos,
            dead: false,
        })
    }

    /// Current stream offset.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn injected(&self, op: &'static str) -> DurableError {
        DurableError::io(op, &self.path, std::io::Error::other(INJECTED))
    }

    /// Writes the whole buffer (or fails), applying any armed fault.
    pub fn write_all(&mut self, buf: &[u8]) -> Result<(), DurableError> {
        if self.dead {
            return Err(self.injected("write"));
        }
        #[cfg(feature = "failpoints")]
        {
            use alexander_eval::failpoints::{action, Action};
            match action(self.site) {
                Some(Action::CrashAfterBytes(n)) => {
                    let budget = n.saturating_sub(self.pos).min(buf.len() as u64) as usize;
                    if budget < buf.len() {
                        self.write_plain(&buf[..budget])?;
                        self.dead = true;
                        return Err(self.injected("write"));
                    }
                }
                Some(Action::ShortWrite(k)) => {
                    let k = k.min(buf.len());
                    self.write_plain(&buf[..k])?;
                    self.dead = true;
                    return Err(self.injected("write"));
                }
                Some(Action::BitFlip { at, bit }) => {
                    let end = self.pos + buf.len() as u64;
                    if at >= self.pos && at < end {
                        let mut flipped = buf.to_vec();
                        flipped[(at - self.pos) as usize] ^= 1 << (bit & 7);
                        return self.write_plain(&flipped);
                    }
                }
                _ => {}
            }
        }
        self.write_plain(buf)
    }

    fn write_plain(&mut self, buf: &[u8]) -> Result<(), DurableError> {
        self.file
            .write_all(buf)
            .map_err(|e| DurableError::io("write", &self.path, e))?;
        self.pos += buf.len() as u64;
        Ok(())
    }

    /// Flushes to stable storage (`fsync`), applying any armed fault.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.dead {
            return Err(self.injected("sync"));
        }
        #[cfg(feature = "failpoints")]
        {
            use alexander_eval::failpoints::{action, Action};
            if matches!(action(self.site), Some(Action::FsyncError)) {
                return Err(self.injected("sync"));
            }
        }
        self.file
            .sync_all()
            .map_err(|e| DurableError::io("sync", &self.path, e))
    }

    /// Truncates the file to `len` bytes and repositions the stream there
    /// (used to finish a checkpoint and to cut a torn WAL tail).
    pub fn truncate(&mut self, len: u64) -> Result<(), DurableError> {
        if self.dead {
            return Err(self.injected("truncate"));
        }
        self.file
            .set_len(len)
            .map_err(|e| DurableError::io("truncate", &self.path, e))?;
        // `set_len` does not move the write cursor (and append-mode handles
        // ignore it anyway); reposition explicitly so non-append handles do
        // not leave a zero-filled hole on the next write.
        self.file
            .seek(SeekFrom::Start(len))
            .map_err(|e| DurableError::io("seek", &self.path, e))?;
        self.pos = len;
        self.sync()
    }
}

/// Writes `bytes` to `path` atomically: the data goes to a sibling temp
/// file, is fsynced, and is renamed over `path` only then. Readers therefore
/// see either the old file or the complete new one — never a torn mixture.
/// The parent directory is fsynced best-effort after the rename so the name
/// change itself is durable.
pub fn atomic_write(path: &Path, bytes: &[u8], site: &'static str) -> Result<(), DurableError> {
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("durable"), |n| n.to_os_string());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = FaultFile::create(&tmp, site)?;
    let write = f.write_all(bytes).and_then(|()| f.sync());
    drop(f);
    if let Err(e) = write {
        // Crash-consistent cleanup: the target was never touched.
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).map_err(|e| DurableError::io("rename", path, e))?;
    if let Some(dir) = path.parent() {
        // Directory fsync is advisory: some filesystems refuse it, and the
        // rename above is already atomic for readers on the same mount.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads a whole file, wrapping IO failures.
pub fn read_file(path: &Path) -> Result<Vec<u8>, DurableError> {
    std::fs::read(path).map_err(|e| DurableError::io("read", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("alexander_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn write_tracks_position_and_appends() {
        let p = tmp("pos");
        let mut f = FaultFile::create(&p, "durable-test-io").unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        assert_eq!(f.position(), 11);
        f.sync().unwrap();
        drop(f);
        let mut f = FaultFile::open_append(&p, "durable-test-io").unwrap();
        assert_eq!(f.position(), 11);
        f.write_all(b"!").unwrap();
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"hello world!");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let p = tmp("atomic");
        atomic_write(&p, b"first", "durable-test-io").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second version", "durable-test-io").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second version");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn truncate_cuts_and_repositions() {
        let p = tmp("trunc");
        let mut f = FaultFile::create(&p, "durable-test-io").unwrap();
        f.write_all(b"0123456789").unwrap();
        f.truncate(4).unwrap();
        assert_eq!(f.position(), 4);
        f.write_all(b"AB").unwrap();
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"0123AB");
        std::fs::remove_file(&p).ok();
    }
}
