//! The durable engine: an [`IncrementalEngine`] whose EDB mutations survive
//! crashes.
//!
//! ## Commit protocol (write-ahead)
//!
//! Mutations buffer in memory ([`DurableEngine::insert`] /
//! [`DurableEngine::delete`]) and become visible only at
//! [`DurableEngine::commit`]:
//!
//! 1. the batch is appended to the WAL as one checksummed, commit-marked
//!    frame and **fsynced**;
//! 2. only then is it applied to the in-memory engine — as **one** mixed
//!    delta ([`IncrementalEngine::apply_batch`]): a single delete cascade
//!    plus a single insertion fixpoint, not one fixpoint per record.
//!
//! A crash before step 1 completes leaves a torn tail that recovery
//! truncates — the batch never happened. A crash after step 1 leaves the
//! frame committed — recovery replays it. There is no interleaving in which
//! a *prefix* of a batch survives: atomicity is the frame.
//!
//! ## Checkpoints
//!
//! [`DurableEngine::checkpoint`] writes the current EDB as a snapshot
//! (atomically: temp file + rename) and then empties the WAL. If the
//! snapshot write fails, nothing changed — the old snapshot and full WAL
//! still recover. If the WAL truncation fails *after* the snapshot renamed,
//! the pair on disk is still recoverable (replaying the old batches against
//! the new snapshot converges: the log is a linear history and replay is
//! idempotent), but appending new frames behind a stale log is not — so the
//! engine poisons itself and every later mutation returns
//! [`DurableError::Poisoned`]. Recover from disk to continue.
//!
//! ## Recovery
//!
//! [`DurableEngine::recover`] loads the snapshot, re-materialises the
//! program over it, replays every committed WAL batch in sequence order
//! (each batch as one mixed delta, mirroring the commit path), and
//! truncates any torn tail. Derived (IDB) state is never persisted — it is
//! recomputed, so a snapshot can never smuggle in facts the program does
//! not justify.

use crate::error::DurableError;
use crate::snapshot::{read_snapshot, write_snapshot};
use crate::wal::{read_wal, Op, Wal, WalRecord};
use alexander_eval::{EvalError, IncrementalEngine};
use alexander_ir::{Atom, Program};
use alexander_storage::Database;
use std::path::{Path, PathBuf};

/// What a recovery found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Facts loaded from the snapshot (EDB only).
    pub snapshot_facts: usize,
    /// Committed batches replayed from the WAL.
    pub batches_replayed: usize,
    /// Individual insert/delete records replayed.
    pub records_replayed: usize,
    /// Bytes of torn tail truncated from the WAL (0 for a clean shutdown).
    pub torn_bytes_truncated: u64,
}

/// Net effect of one committed batch on the maintained database.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Sequence number the batch committed under (`None`: empty batch,
    /// nothing was written).
    pub seq: Option<u64>,
    /// Facts added across the batch, derived facts included.
    pub added: usize,
    /// Net facts removed across the batch — base and derived, minus any
    /// overdeletions the cascade rederived.
    pub removed: usize,
}

/// A WAL batch as the incremental engine's mixed-delta input
/// (`true` = insert).
fn batch_ops(records: &[WalRecord]) -> Vec<(bool, Atom)> {
    records
        .iter()
        .map(|rec| (matches!(rec.op, Op::Insert), rec.atom()))
        .collect()
}

/// A crash-safe incremental Datalog engine (see module docs for the
/// protocol).
pub struct DurableEngine {
    engine: IncrementalEngine,
    wal: Wal,
    snapshot_path: PathBuf,
    pending: Vec<WalRecord>,
    /// `Some(op)` once a commit/checkpoint failed half-way; every later
    /// mutation returns [`DurableError::Poisoned`] naming `op`.
    poisoned: Option<&'static str>,
}

impl DurableEngine {
    /// Starts a fresh durable store: writes `edb` as the initial snapshot,
    /// creates an empty WAL, and materialises `program` over it. Existing
    /// files at either path are replaced.
    pub fn create(
        program: Program,
        edb: Database,
        snapshot_path: &Path,
        wal_path: &Path,
    ) -> Result<DurableEngine, DurableError> {
        write_snapshot(&edb, snapshot_path)?;
        let wal = Wal::create(wal_path)?;
        let engine = IncrementalEngine::new(program, edb)?;
        Ok(DurableEngine {
            engine,
            wal,
            snapshot_path: snapshot_path.to_path_buf(),
            pending: Vec::new(),
            poisoned: None,
        })
    }

    /// Rebuilds the engine from what is on disk: snapshot, then committed
    /// WAL batches in order; any torn tail is truncated. The returned engine
    /// is ready for new batches.
    ///
    /// This is also the escape hatch after a poisoned handle (see
    /// [`DurableError::Poisoned`]): drop the poisoned engine and recover —
    /// disk is authoritative, so the recovered engine reflects exactly the
    /// batches that committed before the failure.
    pub fn recover(
        program: Program,
        snapshot_path: &Path,
        wal_path: &Path,
    ) -> Result<(DurableEngine, RecoveryStats), DurableError> {
        let edb = read_snapshot(snapshot_path)?;
        let mut stats = RecoveryStats {
            snapshot_facts: edb.total_tuples(),
            ..RecoveryStats::default()
        };
        let mut engine = IncrementalEngine::new(program, edb)?;
        let contents = read_wal(wal_path)?;
        for batch in &contents.batches {
            engine.apply_batch(&batch_ops(&batch.records))?;
            stats.records_replayed += batch.records.len();
            stats.batches_replayed += 1;
        }
        if contents.torn {
            let disk_len = std::fs::metadata(wal_path)
                .map_err(|e| DurableError::io("stat", wal_path, e))?
                .len();
            stats.torn_bytes_truncated = disk_len - contents.valid_len;
        }
        let wal = Wal::open_append(wal_path, &contents)?;
        Ok((
            DurableEngine {
                engine,
                wal,
                snapshot_path: snapshot_path.to_path_buf(),
                pending: Vec::new(),
                poisoned: None,
            },
            stats,
        ))
    }

    /// The maintained database (EDB + derived facts). Uncommitted buffered
    /// mutations are *not* visible here — they apply at [`Self::commit`].
    pub fn db(&self) -> &Database {
        self.engine.db()
    }

    /// A copy of the extensional store only — what a snapshot would persist
    /// (O(facts): rows are re-packed into a fresh database). Serving layers
    /// call this once at open to seed their epoch chain, then mirror
    /// committed mutations incrementally instead of re-extracting.
    pub fn edb(&self) -> Database {
        self.engine.edb()
    }

    /// Buffered (uncommitted) mutation count.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Bytes of committed WAL, header included.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Whether this handle is poisoned, and by which operation.
    pub fn poisoned_by(&self) -> Option<&'static str> {
        self.poisoned
    }

    fn check_usable(&self) -> Result<(), DurableError> {
        if let Some(op) = self.poisoned {
            return Err(DurableError::Poisoned { op });
        }
        Ok(())
    }

    fn buffer(&mut self, rec: Option<WalRecord>, fact: &Atom) -> Result<(), DurableError> {
        self.check_usable()?;
        let pred = fact.predicate();
        if self.engine.program().is_idb(pred) {
            return Err(EvalError::IdbUpdate(pred).into());
        }
        // Groundness is checked at buffer time so commit cannot log a record
        // the engine would then reject: once a frame is fsynced it *will* be
        // replayed.
        let rec = rec.ok_or_else(|| {
            EvalError::Invalid(vec![alexander_ir::ProgramError::NonGroundFact {
                fact: fact.to_string(),
            }])
        })?;
        self.pending.push(rec);
        Ok(())
    }

    /// Buffers an EDB insertion for the next commit.
    pub fn insert(&mut self, fact: &Atom) -> Result<(), DurableError> {
        self.buffer(WalRecord::insert(fact), fact)
    }

    /// Buffers an EDB deletion for the next commit.
    pub fn delete(&mut self, fact: &Atom) -> Result<(), DurableError> {
        self.buffer(WalRecord::delete(fact), fact)
    }

    /// Commits the buffered batch: logs it durably, then applies it to the
    /// engine. On any error the engine poisons itself (disk and memory can
    /// no longer be proven to agree); the on-disk pair stays recoverable.
    pub fn commit(&mut self) -> Result<CommitStats, DurableError> {
        self.check_usable()?;
        if self.pending.is_empty() {
            return Ok(CommitStats::default());
        }
        let batch = std::mem::take(&mut self.pending);
        let seq = match self.wal.append_batch(&batch) {
            Ok(seq) => seq,
            Err(e) => {
                // The append may have left a torn tail; this handle cannot
                // know how much persisted, so it stops accepting writes.
                self.poisoned = Some("commit: wal append");
                return Err(e);
            }
        };
        // invariant: records were validated at buffer time (ground,
        // extensional), so the engine only fails here on internal errors —
        // which still poison, keeping disk authoritative.
        match self.engine.apply_batch(&batch_ops(&batch)) {
            Ok(out) => Ok(CommitStats {
                seq: Some(seq),
                added: out.added,
                removed: out.overdeleted - out.rederived,
            }),
            Err(e) => {
                self.poisoned = Some("commit: engine apply");
                Err(e.into())
            }
        }
    }

    /// Writes the current EDB as a fresh snapshot and empties the WAL.
    /// Buffered (uncommitted) mutations must be committed or they are not
    /// part of the checkpoint — calling with a non-empty buffer is rejected.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        self.check_usable()?;
        if !self.pending.is_empty() {
            return Err(DurableError::Corrupt {
                path: self.snapshot_path.clone(),
                offset: 0,
                detail: format!(
                    "checkpoint with {} uncommitted mutations; commit first",
                    self.pending.len()
                ),
            });
        }
        // Atomic: on failure the old snapshot is intact and the WAL still
        // holds every batch, so nothing is poisoned.
        write_snapshot(&self.engine.edb(), &self.snapshot_path)?;
        // The snapshot now covers everything in the log. If this truncation
        // fails the pair is STILL recoverable (replay converges), but new
        // appends behind a stale log would not be — poison.
        if let Err(e) = self.wal.truncate_to_header() {
            self.poisoned = Some("checkpoint: wal truncate");
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::Const;
    use alexander_parser::parse;
    use alexander_storage::row_atom;

    fn tc_program() -> Program {
        parse("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).")
            .expect("parses")
            .program
    }

    fn edge(a: &str, b: &str) -> Atom {
        row_atom(
            alexander_ir::Symbol::intern("edge"),
            &[Const::sym(a), Const::sym(b)],
        )
    }

    fn snap(db: &Database) -> Vec<String> {
        let mut out: Vec<String> = db
            .predicates()
            .into_iter()
            .flat_map(|p| db.atoms_of(p))
            .map(|a| a.to_string())
            .collect();
        out.sort();
        out
    }

    fn paths(name: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        (
            dir.join(format!("alexander_eng_{name}_{pid}.snap")),
            dir.join(format!("alexander_eng_{name}_{pid}.wal")),
        )
    }

    #[test]
    fn commit_then_recover_roundtrips() {
        let (sp, wp) = paths("rt");
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        eng.insert(&edge("a", "b")).unwrap();
        eng.insert(&edge("b", "c")).unwrap();
        let st = eng.commit().unwrap();
        assert_eq!(st.seq, Some(1));
        assert!(st.added >= 2 + 3, "derived paths counted, got {}", st.added);
        eng.delete(&edge("b", "c")).unwrap();
        eng.commit().unwrap();
        let want = snap(eng.db());
        drop(eng);

        let (rec, stats) = DurableEngine::recover(tc_program(), &sp, &wp).unwrap();
        assert_eq!(snap(rec.db()), want);
        assert_eq!(stats.batches_replayed, 2);
        assert_eq!(stats.records_replayed, 3);
        assert_eq!(stats.torn_bytes_truncated, 0);
        std::fs::remove_file(&sp).ok();
        std::fs::remove_file(&wp).ok();
    }

    #[test]
    fn checkpoint_empties_wal_and_still_recovers() {
        let (sp, wp) = paths("ckpt");
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        eng.insert(&edge("a", "b")).unwrap();
        eng.commit().unwrap();
        eng.checkpoint().unwrap();
        assert_eq!(eng.wal_len(), crate::wal::WAL_HEADER);
        eng.insert(&edge("b", "c")).unwrap();
        eng.commit().unwrap();
        let want = snap(eng.db());
        drop(eng);

        let (rec, stats) = DurableEngine::recover(tc_program(), &sp, &wp).unwrap();
        assert_eq!(snap(rec.db()), want);
        // Only the post-checkpoint batch is in the log.
        assert_eq!(stats.batches_replayed, 1);
        assert_eq!(stats.snapshot_facts, 1);
        std::fs::remove_file(&sp).ok();
        std::fs::remove_file(&wp).ok();
    }

    #[test]
    fn uncommitted_mutations_are_invisible_and_block_checkpoints() {
        let (sp, wp) = paths("pending");
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        eng.insert(&edge("a", "b")).unwrap();
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.db().total_tuples(), 0, "not visible before commit");
        let err = eng.checkpoint().unwrap_err();
        assert!(err.to_string().contains("uncommitted"), "{err}");
        std::fs::remove_file(&sp).ok();
        std::fs::remove_file(&wp).ok();
    }

    #[test]
    fn idb_and_nonground_mutations_are_rejected_at_buffer_time() {
        let (sp, wp) = paths("reject");
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        let idb = row_atom(
            alexander_ir::Symbol::intern("path"),
            &[Const::sym("a"), Const::sym("b")],
        );
        assert!(matches!(
            eng.insert(&idb).unwrap_err(),
            DurableError::Replay(EvalError::IdbUpdate(_))
        ));
        let nonground = Atom::new(
            "edge",
            vec![alexander_ir::Term::var("X"), alexander_ir::Term::sym("b")],
        );
        assert!(eng.insert(&nonground).is_err());
        assert_eq!(eng.pending(), 0);
        std::fs::remove_file(&sp).ok();
        std::fs::remove_file(&wp).ok();
    }

    #[test]
    fn empty_commit_writes_nothing() {
        let (sp, wp) = paths("nop");
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        let before = eng.wal_len();
        let st = eng.commit().unwrap();
        assert_eq!(st.seq, None);
        assert_eq!(eng.wal_len(), before);
        std::fs::remove_file(&sp).ok();
        std::fs::remove_file(&wp).ok();
    }
}
