//! Durability: snapshots, write-ahead logging, and crash recovery for the
//! incremental engine.
//!
//! The persistent state is a *pair* of files:
//!
//! * a **snapshot** ([`snapshot`]) — the full EDB at some checkpoint, as one
//!   atomically-replaced, CRC32-checksummed file;
//! * a **WAL** ([`wal`]) — the EDB deltas committed since that checkpoint,
//!   as append-only, individually checksummed, commit-marked frames.
//!
//! [`DurableEngine`] ties them to an
//! [`IncrementalEngine`](alexander_eval::IncrementalEngine) with a
//! write-ahead commit protocol; [`DurableEngine::recover`] rebuilds the
//! exact pre-crash fixpoint from the pair, truncating any torn WAL tail a
//! crash left behind. Derived facts are never persisted — recovery
//! re-materialises the program, so disk corruption can at worst *lose*
//! committed batches noisily (a structured [`DurableError`]), never smuggle
//! in unjustified conclusions.
//!
//! Every byte written flows through [`io::FaultFile`], which under the
//! test-only `failpoints` feature applies injected crash faults
//! byte-exactly; the crash-point sweep in `tests/crash_sweep.rs` uses this
//! to kill the writer at every byte offset of a reference run and prove
//! recovery lands on a batch boundary each time.

pub mod codec;
pub mod crc;
pub mod engine;
pub mod error;
pub mod io;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use engine::{CommitStats, DurableEngine, RecoveryStats};
pub use error::DurableError;
pub use snapshot::{decode_snapshot, encode_snapshot, read_snapshot, write_snapshot};
pub use wal::{
    apply_to_database, decode_wal, read_wal, Op, Wal, WalBatch, WalContents, WalRecord, WAL_HEADER,
};
