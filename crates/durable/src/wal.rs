//! Write-ahead log of EDB deltas.
//!
//! ## Format (version 1, little-endian)
//!
//! ```text
//! [0..8)   magic  "ALEXWAL0"
//! [8..12)  u32    version (1)
//! then zero or more frames:
//!   u32 payload_len
//!   u32 payload_crc       — CRC32 of the payload bytes
//!   payload:
//!     u64 seq             — 1, 2, 3, … strictly sequential
//!     u32 nrecords
//!     per record:
//!       u8  op            — 0 insert, 1 delete
//!       u32 name_len; UTF-8 predicate name
//!       u32 arity
//!       arity cells       — u8 tag; tag 0 (sym): u32 len + UTF-8
//!                                   tag 1 (int): i64
//!   u8 commit marker (0xC3)
//! ```
//!
//! Unlike the snapshot, WAL symbols are inlined as strings per cell: a log
//! grows by appends only, so there is no moment to build a global string
//! table, and batches must be self-contained to replay after any prefix.
//!
//! ## The torn-tail rule
//!
//! Appends go through one `write_all` per frame, so a crash leaves a
//! *prefix* of a valid frame at the end of the file. The reader therefore
//! distinguishes two shapes of bad bytes:
//!
//! * **Torn tail** — the file ends before a frame is complete (fewer than 8
//!   header bytes remain, or `payload_len + 1` more bytes were promised than
//!   exist). This is what a crash produces. Not an error: the reader returns
//!   every committed batch before it plus the offset to truncate at.
//! * **Corruption** — a frame whose bytes are all present but whose checksum,
//!   commit marker, sequence number, or payload structure is wrong. No crash
//!   of an append-only writer can produce this, so it is rejected with
//!   [`DurableError::Corrupt`] rather than silently dropped.

use crate::codec::{put_i64, put_str, put_u32, put_u64, put_u8, Cursor};
use crate::crc::crc32;
use crate::error::DurableError;
use crate::io::{read_file, FaultFile};
use alexander_ir::{Atom, Const, Predicate, Symbol};
use alexander_storage::{row_atom, Database, Tuple};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ALEXWAL0";
const VERSION: u32 = 1;
/// Bytes before the first frame: magic + version.
pub const WAL_HEADER: u64 = 12;
const COMMIT: u8 = 0xC3;

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const TAG_SYM: u8 = 0;
const TAG_INT: u8 = 1;

/// One logged EDB mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    pub op: Op,
    pub pred: Predicate,
    pub values: Vec<Const>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Insert,
    Delete,
}

impl WalRecord {
    pub fn insert(atom: &Atom) -> Option<WalRecord> {
        Some(WalRecord {
            op: Op::Insert,
            pred: atom.predicate(),
            values: atom.ground_args()?,
        })
    }

    pub fn delete(atom: &Atom) -> Option<WalRecord> {
        Some(WalRecord {
            op: Op::Delete,
            pred: atom.predicate(),
            values: atom.ground_args()?,
        })
    }

    /// The record as a ground atom (for engine replay).
    pub fn atom(&self) -> Atom {
        row_atom(self.pred.name, &self.values)
    }
}

/// One committed batch: records that became visible atomically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalBatch {
    pub seq: u64,
    pub records: Vec<WalRecord>,
}

/// Everything a WAL read yields: the committed prefix plus where it ends.
#[derive(Debug)]
pub struct WalContents {
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid prefix (header + committed frames). A torn
    /// tail, if any, starts here; recovery truncates the file to this.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` existed (a torn tail was cut off).
    pub torn: bool,
}

/// Append-only WAL writer. All bytes flow through [`FaultFile`] under the
/// failpoint site `"durable-wal-io"`.
pub struct Wal {
    file: FaultFile,
    next_seq: u64,
}

impl Wal {
    /// Creates a fresh (truncated) WAL containing only the header.
    pub fn create(path: &Path) -> Result<Wal, DurableError> {
        let mut file = FaultFile::create(path, "durable-wal-io")?;
        let mut header = Vec::with_capacity(WAL_HEADER as usize);
        header.extend_from_slice(MAGIC);
        put_u32(&mut header, VERSION);
        file.write_all(&header)?;
        file.sync()?;
        Ok(Wal { file, next_seq: 1 })
    }

    /// Opens an existing WAL for appending after `contents` was read from it
    /// (recovery truncates any torn tail first, then appends go after the
    /// last committed frame).
    pub fn open_append(path: &Path, contents: &WalContents) -> Result<Wal, DurableError> {
        let mut file = FaultFile::open_append(path, "durable-wal-io")?;
        if contents.torn || file.position() != contents.valid_len {
            file.truncate(contents.valid_len)?;
        }
        Ok(Wal {
            file,
            next_seq: contents.batches.last().map_or(0, |b| b.seq) + 1,
        })
    }

    /// Sequence number the next committed batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes of committed log (header included).
    pub fn len(&self) -> u64 {
        self.file.position()
    }

    pub fn is_empty(&self) -> bool {
        self.len() <= WAL_HEADER
    }

    /// Appends one batch as a single frame and fsyncs it. On return the
    /// batch is durable; on error the file may hold a torn tail that the
    /// next recovery truncates.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        let mut payload = Vec::new();
        put_u64(&mut payload, seq);
        put_u32(&mut payload, records.len() as u32);
        for r in records {
            put_u8(
                &mut payload,
                if r.op == Op::Insert {
                    OP_INSERT
                } else {
                    OP_DELETE
                },
            );
            put_str(&mut payload, r.pred.name.as_str());
            put_u32(&mut payload, r.pred.arity as u32);
            for c in &r.values {
                match c {
                    Const::Sym(s) => {
                        put_u8(&mut payload, TAG_SYM);
                        put_str(&mut payload, s.as_str());
                    }
                    Const::Int(n) => {
                        put_u8(&mut payload, TAG_INT);
                        put_i64(&mut payload, *n);
                    }
                }
            }
        }
        let mut frame = Vec::with_capacity(9 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        put_u8(&mut frame, COMMIT);
        self.file.write_all(&frame)?;
        self.file.sync()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Discards every logged batch (after a checkpoint made them redundant),
    /// leaving just the header. Sequence numbering restarts at 1.
    pub fn truncate_to_header(&mut self) -> Result<(), DurableError> {
        self.file.truncate(WAL_HEADER)?;
        self.next_seq = 1;
        Ok(())
    }
}

/// Parses WAL bytes. Torn tails are data (see module docs); everything else
/// wrong is a structured error.
pub fn decode_wal(bytes: &[u8], path: &Path) -> Result<WalContents, DurableError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(DurableError::BadMagic {
            path: path.to_path_buf(),
            expected: "wal",
        });
    }
    // The header is read through the cursor rather than a sized slice: a
    // file cut inside the version field surfaces as a structured error,
    // never a slice panic.
    let version = Cursor::new(&bytes[8..])
        .u32("version")
        .map_err(|e| DurableError::corrupt(path, 8, e.detail))?;
    if version != VERSION {
        return Err(DurableError::BadVersion {
            path: path.to_path_buf(),
            found: version,
            supported: VERSION,
        });
    }

    let mut batches = Vec::new();
    let mut pos = WAL_HEADER as usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalContents {
                batches,
                valid_len: pos as u64,
                torn: false,
            });
        }
        let torn = |batches: Vec<WalBatch>| {
            Ok(WalContents {
                batches,
                valid_len: pos as u64,
                torn: true,
            })
        };
        // The 8-byte frame header (payload length + CRC) is read through
        // the cursor over whatever bytes remain: a file that ends inside
        // the header is a torn tail by construction, not a sized-slice
        // invariant that could ever panic.
        let mut head = Cursor::new(&bytes[pos..]);
        let (payload_len, want_crc) = match (head.u32("payload length"), head.u32("payload crc")) {
            (Ok(len), Ok(crc)) => (len as usize, crc),
            _ => return torn(batches),
        };
        if payload_len as u64 + 1 > (remaining - 8) as u64 {
            // The frame promises more bytes than the file has: the append
            // died mid-frame.
            return torn(batches);
        }
        let payload = &bytes[pos + 8..pos + 8 + payload_len];
        let marker = bytes[pos + 8 + payload_len];
        if crc32(payload) != want_crc {
            return Err(DurableError::corrupt(
                path,
                pos as u64,
                "frame checksum mismatch before the tail",
            ));
        }
        if marker != COMMIT {
            return Err(DurableError::corrupt(
                path,
                (pos + 8 + payload_len) as u64,
                format!("bad commit marker {marker:#04x}"),
            ));
        }
        let batch = decode_payload(payload, path, pos as u64 + 8)?;
        let want_seq = batches.last().map_or(0, |b: &WalBatch| b.seq) + 1;
        if batch.seq != want_seq {
            return Err(DurableError::corrupt(
                path,
                pos as u64 + 8,
                format!(
                    "sequence gap: frame carries seq {}, expected {want_seq}",
                    batch.seq
                ),
            ));
        }
        batches.push(batch);
        pos += 8 + payload_len + 1;
    }
}

/// Decodes one checksum-valid frame payload. Structural garbage here means
/// the writer was broken (the CRC already matched), so it is `Corrupt`.
fn decode_payload(payload: &[u8], path: &Path, base: u64) -> Result<WalBatch, DurableError> {
    let mut c = Cursor::new(payload);
    let at = |c: &Cursor, e: crate::codec::CodecError| {
        DurableError::corrupt(path, base + c.offset(), e.detail)
    };
    let seq = c.u64("seq").map_err(|e| at(&c, e))?;
    let nrecords = c.u32("record count").map_err(|e| at(&c, e))?;
    // Each record is at least op + name len + arity = 9 bytes.
    c.check_count(nrecords as u64, 9, "records")
        .map_err(|e| at(&c, e))?;
    let mut records = Vec::with_capacity(nrecords as usize);
    for _ in 0..nrecords {
        let op = match c.u8("op").map_err(|e| at(&c, e))? {
            OP_INSERT => Op::Insert,
            OP_DELETE => Op::Delete,
            other => {
                return Err(DurableError::corrupt(
                    path,
                    base + c.offset(),
                    format!("unknown wal op {other}"),
                ))
            }
        };
        let name = Symbol::intern(c.str_("predicate name").map_err(|e| at(&c, e))?);
        let arity = c.u32("arity").map_err(|e| at(&c, e))? as usize;
        c.check_count(arity as u64, 2, "cells")
            .map_err(|e| at(&c, e))?;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = c.u8("cell tag").map_err(|e| at(&c, e))?;
            values.push(match tag {
                TAG_SYM => Const::Sym(Symbol::intern(c.str_("sym cell").map_err(|e| at(&c, e))?)),
                TAG_INT => Const::Int(c.i64("int cell").map_err(|e| at(&c, e))?),
                other => {
                    return Err(DurableError::corrupt(
                        path,
                        base + c.offset(),
                        format!("unknown cell tag {other}"),
                    ))
                }
            });
        }
        records.push(WalRecord {
            op,
            pred: Predicate { name, arity },
            values,
        });
    }
    if !c.is_empty() {
        return Err(DurableError::corrupt(
            path,
            base + c.offset(),
            format!("{} trailing bytes in frame payload", c.remaining()),
        ));
    }
    Ok(WalBatch { seq, records })
}

/// Reads and validates the WAL at `path`.
pub fn read_wal(path: &Path) -> Result<WalContents, DurableError> {
    decode_wal(&read_file(path)?, path)
}

/// Replays committed batches directly into an EDB [`Database`] — the
/// program-free replay the CLI uses (no materialisation involved).
pub fn apply_to_database(batches: &[WalBatch], db: &mut Database) {
    for b in batches {
        for r in &b.records {
            match r.op {
                Op::Insert => {
                    db.insert(r.pred, Tuple::new(r.values.clone()));
                }
                Op::Delete => {
                    db.remove_atom(&r.atom());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("alexander_wal_{name}_{}", std::process::id()))
    }

    fn rec(op: Op, pred: &str, values: Vec<Const>) -> WalRecord {
        WalRecord {
            op,
            pred: Predicate::new(pred, values.len()),
            values,
        }
    }

    fn sym2(op: Op, pred: &str, a: &str, b: &str) -> WalRecord {
        rec(op, pred, vec![Const::sym(a), Const::sym(b)])
    }

    #[test]
    fn roundtrips_batches() {
        let p = tmp("rt");
        let b1 = vec![
            sym2(Op::Insert, "edge", "a", "b"),
            rec(Op::Insert, "score", vec![Const::sym("a"), Const::int(3)]),
        ];
        let b2 = vec![sym2(Op::Delete, "edge", "a", "b")];
        let mut wal = Wal::create(&p).unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.append_batch(&b1).unwrap(), 1);
        assert_eq!(wal.append_batch(&b2).unwrap(), 2);
        drop(wal);
        let got = read_wal(&p).unwrap();
        assert!(!got.torn);
        assert_eq!(got.batches.len(), 2);
        assert_eq!(got.batches[0].records, b1);
        assert_eq!(got.batches[1].records, b2);
        assert_eq!(got.valid_len, std::fs::metadata(&p).unwrap().len());

        // Reopen for append and keep numbering.
        let mut wal = Wal::open_append(&p, &got).unwrap();
        assert_eq!(wal.next_seq(), 3);
        wal.append_batch(&[sym2(Op::Insert, "edge", "b", "c")])
            .unwrap();
        drop(wal);
        assert_eq!(read_wal(&p).unwrap().batches.len(), 3);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_batches_commit() {
        let p = tmp("empty");
        let mut wal = Wal::create(&p).unwrap();
        wal.append_batch(&[]).unwrap();
        drop(wal);
        let got = read_wal(&p).unwrap();
        assert_eq!(got.batches.len(), 1);
        assert!(got.batches[0].records.is_empty());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn every_truncation_is_clean_or_torn_never_corrupt() {
        // Cut the log after every byte length: each prefix must parse as the
        // committed batches it fully contains, flagged torn iff cut mid-frame.
        // This is the torn-tail rule stated byte-exactly.
        let p = tmp("cuts");
        let mut wal = Wal::create(&p).unwrap();
        wal.append_batch(&[sym2(Op::Insert, "edge", "a", "b")])
            .unwrap();
        let one_batch = wal.len();
        wal.append_batch(&[
            sym2(Op::Delete, "edge", "a", "b"),
            sym2(Op::Insert, "edge", "b", "c"),
        ])
        .unwrap();
        drop(wal);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::remove_file(&p).ok();

        for len in WAL_HEADER as usize..=bytes.len() {
            let got = decode_wal(&bytes[..len], Path::new("t")).unwrap_or_else(|e| {
                panic!("prefix of {len} bytes rejected: {e}");
            });
            let complete = [(WAL_HEADER, 0), (one_batch, 1), (bytes.len() as u64, 2)]
                .iter()
                .rev()
                .find(|(end, _)| len as u64 >= *end)
                .map(|&(end, n)| (end, n))
                .unwrap();
            assert_eq!(got.batches.len(), complete.1, "prefix {len}");
            assert_eq!(got.valid_len, complete.0, "prefix {len}");
            assert_eq!(got.torn, (len as u64) != complete.0, "prefix {len}");
        }
        for len in 0..WAL_HEADER as usize {
            assert!(decode_wal(&bytes[..len], Path::new("t")).is_err());
        }
    }

    #[test]
    fn mid_file_corruption_is_rejected_not_truncated() {
        let p = tmp("midcorrupt");
        let mut wal = Wal::create(&p).unwrap();
        wal.append_batch(&[sym2(Op::Insert, "edge", "a", "b")])
            .unwrap();
        wal.append_batch(&[sym2(Op::Insert, "edge", "b", "c")])
            .unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        // Flip a payload byte of the FIRST frame: a crash cannot explain
        // damage that has committed data after it.
        bytes[WAL_HEADER as usize + 10] ^= 0x40;
        let err = decode_wal(&bytes, Path::new("t")).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let p = tmp("seqgap");
        let mut wal = Wal::create(&p).unwrap();
        wal.append_batch(&[]).unwrap();
        wal.append_batch(&[]).unwrap();
        drop(wal);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        // Drop the first frame, keeping the second (seq 2) right after the
        // header: replaying it without batch 1 would be silent data loss.
        let frame1_end = {
            let len = u32::from_le_bytes(
                bytes[WAL_HEADER as usize..WAL_HEADER as usize + 4]
                    .try_into()
                    .unwrap(),
            ) as usize;
            WAL_HEADER as usize + 8 + len + 1
        };
        let mut spliced = bytes[..WAL_HEADER as usize].to_vec();
        spliced.extend_from_slice(&bytes[frame1_end..]);
        let err = decode_wal(&spliced, Path::new("t")).unwrap_err();
        assert!(err.to_string().contains("sequence gap"), "{err}");
    }

    #[test]
    fn truncate_to_header_resets() {
        let p = tmp("reset");
        let mut wal = Wal::create(&p).unwrap();
        wal.append_batch(&[sym2(Op::Insert, "edge", "a", "b")])
            .unwrap();
        wal.truncate_to_header().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.next_seq(), 1);
        wal.append_batch(&[sym2(Op::Insert, "edge", "x", "y")])
            .unwrap();
        drop(wal);
        let got = read_wal(&p).unwrap();
        assert_eq!(got.batches.len(), 1);
        assert_eq!(got.batches[0].seq, 1);
        assert_eq!(got.batches[0].records[0].atom().to_string(), "edge(x, y)");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn apply_to_database_replays_inserts_and_deletes() {
        let mut db = Database::new();
        let ab = sym2(Op::Insert, "edge", "a", "b");
        let bc = sym2(Op::Insert, "edge", "b", "c");
        let batches = vec![
            WalBatch {
                seq: 1,
                records: vec![ab.clone(), bc.clone()],
            },
            WalBatch {
                seq: 2,
                records: vec![sym2(Op::Delete, "edge", "a", "b")],
            },
        ];
        apply_to_database(&batches, &mut db);
        assert!(!db.contains_atom(&ab.atom()));
        assert!(db.contains_atom(&bc.atom()));
        assert_eq!(db.total_tuples(), 1);
    }
}
