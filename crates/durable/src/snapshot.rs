//! Arena snapshots: a whole [`Database`] as one checksummed file.
//!
//! ## Format (version 1, little-endian)
//!
//! ```text
//! [0..8)    magic  "ALEXSNAP"
//! [8..12)   u32    version (1)
//! [12..20)  u64    body length
//! [20..24)  u32    CRC32 of the body
//! [24..)    body
//! ```
//!
//! Body:
//!
//! ```text
//! u32 nstrings; nstrings × { u32 len; UTF-8 bytes }    — string table
//! u32 nrelations
//! per relation:
//!   u32 name_sid        — string-table index of the predicate name
//!   u32 arity
//!   u64 nrows
//!   nrows × arity cells — cell = u8 tag; tag 0 (sym): u32 sid
//!                                        tag 1 (int): i64
//! ```
//!
//! The body is the relation arenas flattened in pool order — the same
//! contiguous `(const pool, stride = arity)` layout the in-memory arenas
//! use, with symbols swapped from process-local interner ids to snapshot-
//! local string-table ids. Interner ids are *not* stable across processes,
//! which is also why row hashes are recomputed at load time (they hash the
//! interned ids): the string table is the part of the interner the snapshot
//! must carry, the hashes are derived state.
//!
//! Snapshots are written atomically (temp file + rename, see
//! [`crate::io::atomic_write`]): a reader sees the old snapshot or the new
//! one, never a torn hybrid. The reader still validates everything —
//! magic, version, length, CRC32, string ids, counts against bytes
//! remaining, duplicate rows — and reports [`DurableError`] values on
//! arbitrary input, never a panic or an unbounded allocation.

use crate::codec::{put_i64, put_str, put_u32, put_u64, put_u8, Cursor};
use crate::crc::crc32;
use crate::error::DurableError;
use crate::io::{atomic_write, read_file};
use alexander_ir::{Const, FxHashMap, Predicate, Symbol};
use alexander_storage::Database;
use std::path::Path;

const MAGIC: &[u8; 8] = b"ALEXSNAP";
const VERSION: u32 = 1;
/// Header bytes before the body: magic + version + body length + body CRC.
const HEADER: usize = 8 + 4 + 8 + 4;

const TAG_SYM: u8 = 0;
const TAG_INT: u8 = 1;

/// Serialises `db` into snapshot bytes (header + checksummed body).
pub fn encode_snapshot(db: &Database) -> Vec<u8> {
    // String table: every symbol in any predicate name or stored cell,
    // numbered in first-seen order.
    let mut sids: FxHashMap<Symbol, u32> = FxHashMap::default();
    let mut strings: Vec<Symbol> = Vec::new();
    let sid = |s: Symbol, sids: &mut FxHashMap<Symbol, u32>, strings: &mut Vec<Symbol>| {
        *sids.entry(s).or_insert_with(|| {
            strings.push(s);
            // invariant: a u32 counter over distinct interned symbols cannot
            // overflow before the interner itself does.
            (strings.len() - 1) as u32
        })
    };

    let preds = db.predicates();
    for &p in &preds {
        sid(p.name, &mut sids, &mut strings);
        // invariant: `predicates()` only returns stored relations.
        let rel = db.relation(p).expect("listed predicate exists");
        for c in rel.pool() {
            if let Const::Sym(s) = c {
                sid(*s, &mut sids, &mut strings);
            }
        }
    }

    let mut body = Vec::new();
    put_u32(&mut body, strings.len() as u32);
    for s in &strings {
        put_str(&mut body, s.as_str());
    }
    put_u32(&mut body, preds.len() as u32);
    for &p in &preds {
        let rel = db.relation(p).expect("listed predicate exists");
        put_u32(&mut body, sids[&p.name]);
        put_u32(&mut body, p.arity as u32);
        put_u64(&mut body, rel.len() as u64);
        for c in rel.pool() {
            match c {
                Const::Sym(s) => {
                    put_u8(&mut body, TAG_SYM);
                    put_u32(&mut body, sids[s]);
                }
                Const::Int(n) => {
                    put_u8(&mut body, TAG_INT);
                    put_i64(&mut body, *n);
                }
            }
        }
    }

    let mut out = Vec::with_capacity(HEADER + body.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, body.len() as u64);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Writes `db` to `path` atomically.
pub fn write_snapshot(db: &Database, path: &Path) -> Result<(), DurableError> {
    atomic_write(path, &encode_snapshot(db), "durable-snapshot-io")
}

/// Parses snapshot bytes into a [`Database`]. All validation failures are
/// structured errors; `path` only labels them.
pub fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<Database, DurableError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(DurableError::BadMagic {
            path: path.to_path_buf(),
            expected: "snapshot",
        });
    }
    // Header fields go through the cursor over whatever bytes remain: a
    // file cut inside the header is a structured error, never a slice
    // panic, even if the HEADER-size guard above ever drifts.
    let mut head = Cursor::new(&bytes[8..]);
    let head_err =
        |e: crate::codec::CodecError| DurableError::corrupt(path, 8 + e.offset, e.detail);
    let version = head.u32("version").map_err(head_err)?;
    if version != VERSION {
        return Err(DurableError::BadVersion {
            path: path.to_path_buf(),
            found: version,
            supported: VERSION,
        });
    }
    let body_len = head.u64("body length").map_err(head_err)?;
    let want_crc = head.u32("body crc").map_err(head_err)?;
    if bytes.len() < HEADER {
        // Unreachable once the reads above succeeded, but keeps the body
        // slice below panic-free by construction.
        return Err(DurableError::corrupt(path, 8, "truncated header"));
    }
    let body = &bytes[HEADER..];
    if body_len != body.len() as u64 {
        return Err(DurableError::corrupt(
            path,
            HEADER as u64,
            format!("body length {body_len} but {} bytes follow", body.len()),
        ));
    }
    if crc32(body) != want_crc {
        return Err(DurableError::corrupt(
            path,
            HEADER as u64,
            "body checksum mismatch",
        ));
    }

    let mut c = Cursor::new(body);
    let at = |c: &Cursor, e: crate::codec::CodecError| {
        DurableError::corrupt(path, HEADER as u64 + c.offset(), e.detail)
    };

    let nstrings = c.u32("string count").map_err(|e| at(&c, e))?;
    c.check_count(nstrings as u64, 4, "string table")
        .map_err(|e| at(&c, e))?;
    let mut symbols: Vec<Symbol> = Vec::with_capacity(nstrings as usize);
    for _ in 0..nstrings {
        symbols.push(Symbol::intern(c.str_("string").map_err(|e| at(&c, e))?));
    }

    let mut db = Database::new();
    let nrels = c.u32("relation count").map_err(|e| at(&c, e))?;
    // Each relation needs at least its 16-byte fixed fields.
    c.check_count(nrels as u64, 16, "relation table")
        .map_err(|e| at(&c, e))?;
    let mut row: Vec<Const> = Vec::new();
    for _ in 0..nrels {
        let name_sid = c.u32("relation name").map_err(|e| at(&c, e))?;
        let name = *symbols.get(name_sid as usize).ok_or_else(|| {
            DurableError::corrupt(
                path,
                HEADER as u64 + c.offset(),
                format!("relation name sid {name_sid} out of range ({nstrings} strings)"),
            )
        })?;
        let arity = c.u32("arity").map_err(|e| at(&c, e))? as usize;
        let nrows = c.u64("row count").map_err(|e| at(&c, e))?;
        let pred = Predicate { name, arity };
        if arity == 0 {
            // The propositional edge case: at most one (empty) row exists,
            // and rows occupy zero body bytes, so the generic count check
            // below would accept any nrows.
            if nrows > 1 {
                return Err(DurableError::corrupt(
                    path,
                    HEADER as u64 + c.offset(),
                    format!("arity-0 relation {name} claims {nrows} rows"),
                ));
            }
            let rel = db.relation_mut(pred);
            if nrows == 1 {
                rel.insert_row(&[]);
            }
            continue;
        }
        // Every cell is at least 2 bytes (tag + payload ≥ 1); bound the row
        // count by the bytes actually present before looping.
        let ncells = nrows.checked_mul(arity as u64).ok_or_else(|| {
            DurableError::corrupt(
                path,
                HEADER as u64 + c.offset(),
                format!("{name}/{arity}: cell count overflows ({nrows} rows)"),
            )
        })?;
        c.check_count(ncells, 2, "cells").map_err(|e| at(&c, e))?;
        let rel = db.relation_mut(pred);
        for r in 0..nrows {
            row.clear();
            for _ in 0..arity {
                let tag = c.u8("cell tag").map_err(|e| at(&c, e))?;
                row.push(match tag {
                    TAG_SYM => {
                        let s = c.u32("sym sid").map_err(|e| at(&c, e))?;
                        Const::Sym(*symbols.get(s as usize).ok_or_else(|| {
                            DurableError::corrupt(
                                path,
                                HEADER as u64 + c.offset(),
                                format!("sym sid {s} out of range ({nstrings} strings)"),
                            )
                        })?)
                    }
                    TAG_INT => Const::Int(c.i64("int cell").map_err(|e| at(&c, e))?),
                    other => {
                        return Err(DurableError::corrupt(
                            path,
                            HEADER as u64 + c.offset(),
                            format!("unknown cell tag {other}"),
                        ))
                    }
                });
            }
            if !rel.insert_row(&row) {
                // Relations are duplicate-free by construction; a duplicate
                // row in a checksum-valid file means the writer was broken,
                // and silently collapsing it would hide real divergence.
                return Err(DurableError::corrupt(
                    path,
                    HEADER as u64 + c.offset(),
                    format!("duplicate row {r} in {name}/{arity}"),
                ));
            }
        }
    }
    if !c.is_empty() {
        return Err(DurableError::corrupt(
            path,
            HEADER as u64 + c.offset(),
            format!("{} trailing bytes after the last relation", c.remaining()),
        ));
    }
    Ok(db)
}

/// Reads and validates the snapshot at `path`.
pub fn read_snapshot(path: &Path) -> Result<Database, DurableError> {
    decode_snapshot(&read_file(path)?, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_storage::Tuple;

    fn sample() -> Database {
        let mut db = Database::new();
        let e = Predicate::new("edge", 2);
        db.insert(e, Tuple::new(vec![Const::sym("a"), Const::sym("b")]));
        db.insert(e, Tuple::new(vec![Const::sym("b"), Const::int(-7)]));
        db.insert(Predicate::new("flag", 0), Tuple::new(Vec::new()));
        db.insert(Predicate::new("n", 1), Tuple::new(vec![Const::int(42)]));
        db
    }

    fn snap(db: &Database) -> Vec<String> {
        let mut out: Vec<String> = db
            .predicates()
            .into_iter()
            .flat_map(|p| db.atoms_of(p))
            .map(|a| a.to_string())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn roundtrips_databases() {
        let db = sample();
        let p = std::env::temp_dir().join(format!("alexander_snap_{}.snap", std::process::id()));
        write_snapshot(&db, &p).unwrap();
        let back = read_snapshot(&p).unwrap();
        assert_eq!(snap(&db), snap(&back));
        assert_eq!(db.total_tuples(), back.total_tuples());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn roundtrips_empty_database() {
        let bytes = encode_snapshot(&Database::new());
        let back = decode_snapshot(&bytes, Path::new("t")).unwrap();
        assert_eq!(back.total_tuples(), 0);
    }

    #[test]
    fn bad_magic_and_version_are_structured() {
        let err = decode_snapshot(b"NOTASNAP", Path::new("t")).unwrap_err();
        assert!(matches!(err, DurableError::BadMagic { .. }), "{err}");

        let mut bytes = encode_snapshot(&sample());
        bytes[8] = 99; // version field
        let err = decode_snapshot(&bytes, Path::new("t")).unwrap_err();
        assert!(
            matches!(err, DurableError::BadVersion { found: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Flip each bit of a full snapshot; the reader must reject every
        // mutant with a structured error (CRC, length, magic, or version),
        // and never roundtrip to a *different* database silently.
        let db = sample();
        let bytes = encode_snapshot(&db);
        let want = snap(&db);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutant = bytes.clone();
                mutant[i] ^= 1 << bit;
                match decode_snapshot(&mutant, Path::new("t")) {
                    Err(_) => {}
                    Ok(got) => assert_eq!(
                        snap(&got),
                        want,
                        "byte {i} bit {bit}: silent corruption accepted"
                    ),
                }
            }
        }
    }

    #[test]
    fn truncations_are_detected() {
        let bytes = encode_snapshot(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len], Path::new("t")).is_err(),
                "truncation to {len} bytes accepted"
            );
        }
    }

    #[test]
    fn hostile_row_counts_cannot_loop_or_allocate() {
        // Hand-build a body claiming u64::MAX rows; the count check must
        // reject it before any loop runs. The header CRC is made valid so
        // the structural check is what fires.
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        put_str(&mut body, "p");
        put_u32(&mut body, 1); // one relation
        put_u32(&mut body, 0); // name sid
        put_u32(&mut body, 3); // arity
        put_u64(&mut body, u64::MAX); // rows
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, VERSION);
        put_u64(&mut bytes, body.len() as u64);
        put_u32(&mut bytes, crc32(&body));
        bytes.extend_from_slice(&body);
        let err = decode_snapshot(&bytes, Path::new("t")).unwrap_err();
        assert!(
            err.to_string().contains("overflows") || err.to_string().contains("impossible"),
            "{err}"
        );
    }

    #[test]
    fn arity_zero_overclaims_are_rejected() {
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        put_str(&mut body, "flag");
        put_u32(&mut body, 1);
        put_u32(&mut body, 0); // name sid
        put_u32(&mut body, 0); // arity 0
        put_u64(&mut body, 2); // two empty rows: impossible
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, VERSION);
        put_u64(&mut bytes, body.len() as u64);
        put_u32(&mut bytes, crc32(&body));
        bytes.extend_from_slice(&body);
        let err = decode_snapshot(&bytes, Path::new("t")).unwrap_err();
        assert!(err.to_string().contains("arity-0"), "{err}");
    }
}
