//! Hostile-bytes robustness: the snapshot and WAL readers are total
//! functions. Arbitrary bytes, mutated valid files, and truncations must
//! produce a structured [`DurableError`] (or, for a WAL, a valid committed
//! prefix) — never a panic, never an allocation driven by a corrupt length
//! field, never a silently-wrong database.
//!
//! Property tests generate random and mutated inputs; a small fixed corpus
//! of regression shapes (hostile lengths, spliced frames, header soup) is
//! decoded alongside so known-nasty inputs stay covered even at low case
//! counts.

use alexander_durable::{decode_snapshot, decode_wal, encode_snapshot, DurableError, Wal};
use alexander_ir::{Const, Predicate};
use alexander_storage::{Database, Tuple};
use proptest::prelude::*;
use std::path::Path;

fn sample_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    let e = Predicate::new("edge", 2);
    for &(a, b) in rows {
        db.insert(e, Tuple::new(vec![Const::int(a), Const::int(b)]));
    }
    db.insert(
        Predicate::new("label", 1),
        Tuple::new(vec![Const::sym("seed")]),
    );
    db
}

fn sample_wal_bytes() -> Vec<u8> {
    let p = std::env::temp_dir().join(format!(
        "alexander_corrupt_wal_{}_{:?}.wal",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut wal = Wal::create(&p).unwrap();
    let rec = |op, a: &str, b: &str| alexander_durable::WalRecord {
        op,
        pred: Predicate::new("edge", 2),
        values: vec![Const::sym(a), Const::sym(b)],
    };
    use alexander_durable::Op;
    wal.append_batch(&[rec(Op::Insert, "a", "b"), rec(Op::Insert, "b", "c")])
        .unwrap();
    wal.append_batch(&[rec(Op::Delete, "a", "b")]).unwrap();
    drop(wal);
    let bytes = std::fs::read(&p).unwrap();
    std::fs::remove_file(&p).ok();
    bytes
}

fn db_state(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .predicates()
        .into_iter()
        .flat_map(|p| db.atoms_of(p))
        .map(|a| a.to_string())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise is never a snapshot.
    #[test]
    fn snapshot_reader_survives_arbitrary_bytes(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512)
    ) {
        let _ = decode_snapshot(&bytes, Path::new("fuzz"));
    }

    /// Noise that *starts like* a snapshot exercises the deep validators
    /// (counts, string ids, tags) rather than dying at the magic check.
    #[test]
    fn snapshot_reader_survives_framed_noise(
        body in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..256)
    ) {
        let mut bytes = b"ALEXSNAP".to_vec();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&alexander_durable::crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        // The checksum is made valid on purpose: every failure must now come
        // from a structural validator, and it must be an Err, because random
        // bytes cannot spell a coherent relation table.
        if decode_snapshot(&bytes, Path::new("fuzz")).is_ok() {
            // Only the trivial empty layouts decode; anything with content
            // decoding OK from noise would be alarming but is checked by the
            // mutation test below, not here.
        }
    }

    /// Point mutations of a valid snapshot: rejected, or (only when the flip
    /// lands in dead air such as padding — which this format has none of)
    /// identical to the original.
    #[test]
    fn snapshot_mutations_never_yield_a_different_database(
        seed in 0i64..50,
        at in 0usize..400,
        bit in 0u8..8,
    ) {
        let db = sample_db(&[(seed, seed + 1), (seed + 1, seed + 2)]);
        let want = db_state(&db);
        let mut bytes = encode_snapshot(&db);
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        match decode_snapshot(&bytes, Path::new("fuzz")) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(db_state(&got), want),
        }
    }

    /// Truncating a valid snapshot anywhere is always a structured error.
    #[test]
    fn snapshot_truncations_always_error(cut in 0usize..400) {
        let bytes = encode_snapshot(&sample_db(&[(1, 2), (2, 3), (3, 4)]));
        prop_assume!(cut < bytes.len());
        prop_assert!(decode_snapshot(&bytes[..cut], Path::new("fuzz")).is_err());
    }

    /// Pure noise is never a WAL (and never panics the reader).
    #[test]
    fn wal_reader_survives_arbitrary_bytes(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512)
    ) {
        let _ = decode_wal(&bytes, Path::new("fuzz"));
    }

    /// Noise behind a valid WAL header: the reader must classify it as a
    /// torn tail (valid empty prefix) or corruption — both non-panicking.
    #[test]
    fn wal_reader_survives_framed_noise(
        tail in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..256)
    ) {
        let mut bytes = b"ALEXWAL0".to_vec();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&tail);
        if let Ok(contents) = decode_wal(&bytes, Path::new("fuzz")) {
            // Whatever survived must be a coherent prefix claim.
            prop_assert!(contents.valid_len <= bytes.len() as u64);
        }
    }

    /// Point mutations of a valid WAL: a structured error, or a committed-
    /// prefix interpretation — never new records out of thin air.
    #[test]
    fn wal_mutations_never_fabricate_records(
        at in 12usize..200,
        bit in 0u8..8,
    ) {
        let bytes = sample_wal_bytes();
        let total_records = 3usize;
        prop_assume!(at < bytes.len());
        let mut mutated = bytes.clone();
        mutated[at] ^= 1 << bit;
        if let Ok(contents) = decode_wal(&mutated, Path::new("fuzz")) {
            let n: usize = contents.batches.iter().map(|b| b.records.len()).sum();
            prop_assert!(n <= total_records, "records fabricated: {}", n);
        }
    }

    /// Every truncation of a valid WAL is a clean or torn prefix, never an
    /// error and never a panic (the crash-shape guarantee).
    #[test]
    fn wal_truncations_always_parse_as_prefixes(cut in 12usize..200) {
        let bytes = sample_wal_bytes();
        prop_assume!(cut <= bytes.len());
        let contents = decode_wal(&bytes[..cut], Path::new("fuzz")).unwrap();
        prop_assert!(contents.valid_len <= cut as u64);
    }
}

/// Fixed corpus of known-hostile shapes, kept outside the property loop so
/// they run on every `cargo test` regardless of case counts.
#[test]
fn corpus_of_hostile_inputs_is_rejected_structurally() {
    let corpus: Vec<Vec<u8>> = vec![
        // Empty and sub-header inputs.
        vec![],
        vec![0x00],
        b"ALEXSNAP".to_vec(),
        b"ALEXWAL0".to_vec(),
        // Short headers: full magic but a truncated version field — the
        // regression shape for the decode paths that used to index past the
        // slice. Every prefix length between magic-only and a full header.
        b"ALEXSNAP\x01".to_vec(),
        b"ALEXSNAP\x01\x00".to_vec(),
        b"ALEXSNAP\x01\x00\x00".to_vec(),
        b"ALEXWAL0\x01".to_vec(),
        b"ALEXWAL0\x01\x00".to_vec(),
        b"ALEXWAL0\x01\x00\x00".to_vec(),
        // Full WAL header followed by a partial frame header (1..8 bytes):
        // must parse as a torn tail, never index out of bounds.
        {
            let mut v = b"ALEXWAL0".to_vec();
            v.extend_from_slice(&1u32.to_le_bytes());
            v.push(0x2A);
            v
        },
        {
            let mut v = b"ALEXWAL0".to_vec();
            v.extend_from_slice(&1u32.to_le_bytes());
            v.extend_from_slice(&[0x2A; 7]);
            v
        },
        // Snapshot header truncated mid body_len / mid crc.
        {
            let mut v = b"ALEXSNAP".to_vec();
            v.extend_from_slice(&1u32.to_le_bytes());
            v.extend_from_slice(&[0x00; 5]);
            v
        },
        // Right magic, absurd version.
        {
            let mut v = b"ALEXSNAP".to_vec();
            v.extend_from_slice(&u32::MAX.to_le_bytes());
            v.extend_from_slice(&[0; 12]);
            v
        },
        // Valid header claiming a 16 EiB body.
        {
            let mut v = b"ALEXSNAP".to_vec();
            v.extend_from_slice(&1u32.to_le_bytes());
            v.extend_from_slice(&u64::MAX.to_le_bytes());
            v.extend_from_slice(&0u32.to_le_bytes());
            v
        },
        // A WAL frame claiming a 4 GiB payload.
        {
            let mut v = b"ALEXWAL0".to_vec();
            v.extend_from_slice(&1u32.to_le_bytes());
            v.extend_from_slice(&u32::MAX.to_le_bytes());
            v.extend_from_slice(&0u32.to_le_bytes());
            v
        },
        // All-0xFF soup of various lengths.
        vec![0xFF; 24],
        vec![0xFF; 4096],
    ];
    for (i, bytes) in corpus.iter().enumerate() {
        // Totality is the property; which structured error fires is not.
        if let Ok(db) = decode_snapshot(bytes, Path::new("corpus")) {
            assert_eq!(db.total_tuples(), 0, "corpus {i}: facts from garbage");
        }
        if let Ok(contents) = decode_wal(bytes, Path::new("corpus")) {
            assert!(
                contents.batches.is_empty(),
                "corpus {i}: frames from garbage"
            );
        }
    }
}

/// A WAL frame claiming a huge-but-plausible record count must be stopped by
/// the count-vs-bytes guard, not by attempting the allocation.
#[test]
fn wal_hostile_record_count_is_rejected_cheaply() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes()); // seq
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // nrecords
    let mut bytes = b"ALEXWAL0".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&alexander_durable::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.push(0xC3);
    let err = decode_wal(&bytes, Path::new("hostile")).unwrap_err();
    assert!(matches!(err, DurableError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("impossible"), "{err}");
}
