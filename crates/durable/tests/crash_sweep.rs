//! The crash-point sweep: kill the durability writer at **every byte** of a
//! reference run and prove recovery always lands on a batch boundary.
//!
//! The atomicity contract under test: after a crash anywhere, recovery
//! yields exactly the fixpoint of some committed-batch prefix — the
//! pre-batch state or the post-batch state, never anything in between, and
//! never a panic. The sweep is exhaustive over crash offsets, so there is no
//! "unlucky byte" left untested; each injected fault is interpreted
//! byte-exactly by the writer wrapper (see `alexander_durable::io`).
//!
//! Requires `--features failpoints`.
#![cfg(feature = "failpoints")]

use alexander_durable::{DurableEngine, DurableError, WAL_HEADER};
use alexander_eval::failpoints::{self, Action};
use alexander_ir::{Atom, Const, Program, Symbol};
use alexander_storage::{row_atom, Database};
use std::path::PathBuf;

fn tc_program() -> Program {
    alexander_parser::parse("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).")
        .expect("parses")
        .program
}

fn edge(a: &str, b: &str) -> Atom {
    row_atom(Symbol::intern("edge"), &[Const::sym(a), Const::sym(b)])
}

/// `(insert?, fact)` — the scripted mutations, grouped into batches. Mixes
/// inserts and a delete so recovery exercises re-derivation both ways.
fn script() -> Vec<Vec<(bool, Atom)>> {
    vec![
        vec![(true, edge("a", "b")), (true, edge("b", "c"))],
        vec![(true, edge("c", "d")), (false, edge("a", "b"))],
        vec![(true, edge("d", "e"))],
    ]
}

fn apply_batch(eng: &mut DurableEngine, batch: &[(bool, Atom)]) -> Result<(), DurableError> {
    for (ins, fact) in batch {
        if *ins {
            eng.insert(fact)?;
        } else {
            eng.delete(fact)?;
        }
    }
    eng.commit().map(|_| ())
}

fn state(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .predicates()
        .into_iter()
        .flat_map(|p| db.atoms_of(p))
        .map(|a| a.to_string())
        .collect();
    out.sort();
    out
}

fn paths(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    (
        dir.join(format!("alexander_sweep_{tag}_{pid}.snap")),
        dir.join(format!("alexander_sweep_{tag}_{pid}.wal")),
    )
}

fn cleanup(sp: &PathBuf, wp: &PathBuf) {
    std::fs::remove_file(sp).ok();
    std::fs::remove_file(wp).ok();
}

/// Fault-free reference run: the oracle states after 0, 1, 2, 3 batches and
/// the WAL length at each boundary.
fn oracle(tag: &str) -> (Vec<Vec<String>>, Vec<u64>) {
    let (sp, wp) = paths(tag);
    let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
    let mut states = vec![state(eng.db())];
    let mut boundaries = vec![eng.wal_len()];
    for batch in script() {
        apply_batch(&mut eng, &batch).unwrap();
        states.push(state(eng.db()));
        boundaries.push(eng.wal_len());
    }
    cleanup(&sp, &wp);
    (states, boundaries)
}

/// Which oracle state a crash at WAL byte `n` must recover to: the last
/// batch whose frame ends at or before `n` survives; everything after is a
/// torn tail.
fn expected_after_crash(boundaries: &[u64], n: u64) -> usize {
    boundaries.iter().rposition(|&end| end <= n).unwrap_or(0)
}

#[test]
fn crash_at_every_wal_byte_recovers_a_batch_boundary() {
    let (states, boundaries) = oracle("oracle");
    let total = *boundaries.last().unwrap();
    assert!(total > WAL_HEADER, "oracle produced no frames");

    let (sp, wp) = paths("sweep");
    for n in 0..=total {
        let _guard = failpoints::scoped();
        // Arm the fault only after `create` so the initial header/snapshot
        // write is not the thing being killed (that case has its own test).
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        failpoints::configure("durable-wal-io", Action::CrashAfterBytes(n));
        let mut committed = 0usize;
        for batch in script() {
            match apply_batch(&mut eng, &batch) {
                Ok(()) => committed += 1,
                Err(_) => break,
            }
        }
        drop(eng);
        failpoints::remove("durable-wal-io");

        let (rec, stats) = DurableEngine::recover(tc_program(), &sp, &wp)
            .unwrap_or_else(|e| panic!("crash at byte {n}: recovery failed: {e}"));
        let want = expected_after_crash(&boundaries, n);
        assert_eq!(
            state(rec.db()),
            states[want],
            "crash at byte {n}: recovered state is not the {want}-batch fixpoint"
        );
        assert_eq!(
            stats.batches_replayed, want,
            "crash at byte {n}: wrong batch count"
        );
        // The writer can never have committed MORE than what recovery sees,
        // and at most one in-flight batch can be lost.
        assert!(committed <= want || committed == want + 1 && n >= boundaries[want]);

        // The recovered engine must accept new work: recovery truncated the
        // torn tail, so appends land on a clean boundary.
        let mut rec = rec;
        rec.insert(&edge("z", "z")).unwrap();
        rec.commit().unwrap();
    }
    cleanup(&sp, &wp);
}

#[test]
fn short_write_of_every_length_loses_at_most_the_inflight_batch() {
    let (states, _) = oracle("sworacle");
    let (sp, wp) = paths("short");
    // Generous upper bound on the first frame's length.
    for k in 0..200usize {
        let _guard = failpoints::scoped();
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        failpoints::configure("durable-wal-io", Action::ShortWrite(k));
        let err = apply_batch(&mut eng, &script()[0]).unwrap_err();
        assert!(matches!(err, DurableError::Io { .. }), "{err}");
        drop(eng);
        failpoints::remove("durable-wal-io");

        let (rec, _) = DurableEngine::recover(tc_program(), &sp, &wp)
            .unwrap_or_else(|e| panic!("short write of {k}: recovery failed: {e}"));
        let got = state(rec.db());
        // If the short write happened to cover the whole frame the batch IS
        // durable even though the writer saw an error — the classic
        // "commit result unknown" outcome. Anything between is forbidden.
        assert!(
            got == states[0] || got == states[1],
            "short write of {k}: recovered a non-boundary state {got:?}"
        );
    }
    cleanup(&sp, &wp);
}

#[test]
fn fsync_failure_poisons_but_disk_stays_recoverable() {
    let (states, _) = oracle("fsoracle");
    let (sp, wp) = paths("fsync");
    let _guard = failpoints::scoped();
    let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
    failpoints::configure("durable-wal-io", Action::FsyncError);
    let err = apply_batch(&mut eng, &script()[0]).unwrap_err();
    assert!(matches!(err, DurableError::Io { .. }), "{err}");
    // The engine no longer trusts its pairing with the disk, and the
    // structured error names the operation that tripped the poison.
    assert_eq!(eng.poisoned_by(), Some("commit: wal append"));
    let poisoned = eng.insert(&edge("x", "y")).unwrap_err();
    assert!(
        matches!(
            poisoned,
            DurableError::Poisoned {
                op: "commit: wal append"
            }
        ),
        "{poisoned}"
    );
    assert!(poisoned.to_string().contains("recover"), "{poisoned}");
    // Every other entry point is equally refused while poisoned.
    assert!(matches!(
        eng.delete(&edge("x", "y")).unwrap_err(),
        DurableError::Poisoned { .. }
    ));
    assert!(matches!(
        eng.commit().unwrap_err(),
        DurableError::Poisoned { .. }
    ));
    assert!(matches!(
        eng.checkpoint().unwrap_err(),
        DurableError::Poisoned { .. }
    ));
    drop(eng);
    failpoints::remove("durable-wal-io");

    // `recover` is the documented escape hatch: disk is authoritative, and
    // the recovered handle accepts new batches again.
    let (mut rec, _) = DurableEngine::recover(tc_program(), &sp, &wp).unwrap();
    assert_eq!(rec.poisoned_by(), None);
    let got = state(rec.db());
    assert!(got == states[0] || got == states[1], "{got:?}");
    rec.insert(&edge("x", "y")).unwrap();
    rec.commit().unwrap();
    assert!(state(rec.db()).contains(&"edge(x, y)".to_string()));
    cleanup(&sp, &wp);
}

#[test]
fn crash_at_every_snapshot_byte_leaves_the_old_checkpoint_intact() {
    // Checkpoint writes go to a temp file first; killing them at any byte
    // must leave the previous snapshot + full WAL pair authoritative.
    let (sp, wp) = paths("snapcrash");
    let snap_len = {
        let _guard = failpoints::scoped();
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        for batch in script() {
            apply_batch(&mut eng, &batch).unwrap();
        }
        eng.checkpoint().unwrap();
        std::fs::metadata(&sp).unwrap().len()
    };
    let (states, _) = oracle("snaporacle");
    let full = states.last().unwrap();

    for n in 0..=snap_len {
        let _guard = failpoints::scoped();
        let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
        for batch in script() {
            apply_batch(&mut eng, &batch).unwrap();
        }
        failpoints::configure("durable-snapshot-io", Action::CrashAfterBytes(n));
        let res = eng.checkpoint();
        failpoints::remove("durable-snapshot-io");
        if n < snap_len {
            let err = res.unwrap_err();
            assert!(matches!(err, DurableError::Io { .. }), "byte {n}: {err}");
            // Not poisoned: the old pair is untouched, work continues.
            eng.insert(&edge("q", "r")).unwrap();
            eng.commit().unwrap();
        } else {
            res.unwrap();
        }
        drop(eng);

        let (rec, _) = DurableEngine::recover(tc_program(), &sp, &wp)
            .unwrap_or_else(|e| panic!("snapshot crash at byte {n}: recovery failed: {e}"));
        let got = state(rec.db());
        if n < snap_len {
            let mut want = full.clone();
            want.extend(["edge(q, r)".to_string(), "path(q, r)".to_string()]);
            want.sort();
            assert_eq!(got, want, "snapshot crash at byte {n}");
        } else {
            assert_eq!(&got, full, "snapshot crash at byte {n}");
        }
    }
    cleanup(&sp, &wp);
}

#[test]
fn bit_flips_anywhere_never_panic_and_never_fabricate_state() {
    let (states, boundaries) = oracle("bforacle");
    let total = *boundaries.last().unwrap();
    let (sp, wp) = paths("bitflip");
    for at in 0..total {
        for bit in [0u8, 3, 7] {
            let _guard = failpoints::scoped();
            let mut eng = DurableEngine::create(tc_program(), Database::new(), &sp, &wp).unwrap();
            failpoints::configure("durable-wal-io", Action::BitFlip { at, bit });
            for batch in script() {
                // Bit flips are silent; all commits appear to succeed.
                apply_batch(&mut eng, &batch).unwrap();
            }
            drop(eng);
            failpoints::remove("durable-wal-io");

            // Silent corruption must surface as a structured error, or — if
            // the flip forged a plausible torn tail — as some batch-boundary
            // prefix state. Never a panic, never an in-between state.
            match DurableEngine::recover(tc_program(), &sp, &wp) {
                Err(_) => {}
                Ok((rec, _)) => {
                    let got = state(rec.db());
                    assert!(
                        states.contains(&got),
                        "flip at byte {at} bit {bit}: non-boundary state {got:?}"
                    );
                }
            }
        }
    }
    cleanup(&sp, &wp);
}
