//! A self-contained property-testing harness exposing the subset of the
//! `proptest` API this workspace uses. The build environment has no access to
//! crates.io, so external crates are vendored as minimal shims.
//!
//! Differences from upstream proptest, deliberate for a shim:
//! - No shrinking: a failing case reports its deterministic seed instead of a
//!   minimised input. Re-running the same test binary replays the same cases.
//! - `prop_filter` retries locally inside `generate` rather than rejecting the
//!   whole case; `prop_assume!` still rejects at the case level.
//! - String strategies support the small regex subset actually used in the
//!   test suites (literals, escapes, `.`, `[...]` classes with ranges, and the
//!   `*` `+` `?` `{m}` `{m,n}` quantifiers).

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case random source: seeded from a hash of the test
    /// name plus the attempt counter, so every run of the binary replays the
    /// same sequence of cases.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(seed_base: u64, attempt: u64) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(
                    seed_base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of a single case body: a hard failure or a discarded case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: runs `config.cases` passing cases, discarding
    /// rejected ones (with a global attempt cap so a too-strict `prop_assume!`
    /// fails loudly instead of spinning).
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed_base = fnv1a(name);
        let mut passed: u32 = 0;
        let mut attempt: u64 = 0;
        let max_attempts = config.cases as u64 * 16 + 1024;
        while passed < config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest '{}': too many rejected cases ({} passed of {} wanted after {} attempts)",
                    name, passed, config.cases, attempt
                );
            }
            let mut rng = TestRng::deterministic(seed_base, attempt);
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{}' failed at case seed {:#x}/{}: {}",
                    name,
                    seed_base,
                    attempt - 1,
                    msg
                ),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// A generator of values of `Self::Value`. Unlike upstream, generation is
    /// direct (no value tree / shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 candidates in a row",
                self.whence
            );
        }
    }

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Integer ranges are strategies directly: `0..10usize`, `-5i64..5`, ...
    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    /// A `&'static str` is a strategy generating strings matching it as a
    /// regex (subset — see the crate docs).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Length specification for `vec`: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Uniform2<S>(S);

    pub fn uniform2<S: Strategy>(element: S) -> Uniform2<S> {
        Uniform2(element)
    }

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 2] {
            [self.0.generate(rng), self.0.generate(rng)]
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// A uniform boolean.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::RngExt;

    enum CharSet {
        Any,
        Lit(char),
        /// Inclusive ranges; a single char is a degenerate range.
        Class(Vec<(char, char)>),
    }

    enum Quant {
        One,
        Star,
        Plus,
        Opt,
        Exact(usize),
        Between(usize, usize),
    }

    fn parse(pattern: &str) -> Vec<(CharSet, Quant)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '.' => {
                    i += 1;
                    CharSet::Any
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).expect("dangling escape in pattern");
                    i += 1;
                    CharSet::Lit(c)
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            ranges.push((lo, hi));
                            i += 2;
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(i < chars.len(), "unterminated character class");
                    i += 1; // skip ']'
                    CharSet::Class(ranges)
                }
                c => {
                    i += 1;
                    CharSet::Lit(c)
                }
            };
            let quant = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    Quant::Star
                }
                Some('+') => {
                    i += 1;
                    Quant::Plus
                }
                Some('?') => {
                    i += 1;
                    Quant::Opt
                }
                Some('{') => {
                    i += 1;
                    let mut m = 0usize;
                    while chars[i].is_ascii_digit() {
                        m = m * 10 + chars[i] as usize - '0' as usize;
                        i += 1;
                    }
                    if chars[i] == ',' {
                        i += 1;
                        let mut n = 0usize;
                        while chars[i].is_ascii_digit() {
                            n = n * 10 + chars[i] as usize - '0' as usize;
                            i += 1;
                        }
                        assert_eq!(chars[i], '}', "malformed {{m,n}} quantifier");
                        i += 1;
                        Quant::Between(m, n)
                    } else {
                        assert_eq!(chars[i], '}', "malformed {{m}} quantifier");
                        i += 1;
                        Quant::Exact(m)
                    }
                }
                _ => Quant::One,
            };
            out.push((set, quant));
        }
        out
    }

    /// Characters occasionally emitted by `.` beyond printable ASCII, to keep
    /// robustness tests honest about unicode and control characters.
    const SPICE: &[char] = &[
        '\n', '\t', '\r', '"', '\\', '\u{0}', '\u{7f}', 'é', 'λ', '中', '😀',
    ];

    fn gen_char(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Lit(c) => *c,
            CharSet::Any => {
                if rng.random_range(0u32..10) < 9 {
                    char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap()
                } else {
                    SPICE[rng.random_range(0..SPICE.len())]
                }
            }
            CharSet::Class(ranges) => {
                let (lo, hi) = ranges[rng.random_range(0..ranges.len())];
                char::from_u32(rng.random_range(lo as u32..hi as u32 + 1)).unwrap_or(lo)
            }
        }
    }

    /// Generates a string matching `pattern` (regex subset).
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let elements = parse(pattern);
        let mut out = String::new();
        for (set, quant) in &elements {
            let count = match quant {
                Quant::One => 1,
                Quant::Star => rng.random_range(0usize..8),
                Quant::Plus => rng.random_range(1usize..9),
                Quant::Opt => rng.random_range(0usize..2),
                Quant::Exact(m) => *m,
                Quant::Between(m, n) => {
                    if m == n {
                        *m
                    } else {
                        rng.random_range(*m..*n + 1)
                    }
                }
            };
            for _ in 0..count {
                out.push(gen_char(set, rng));
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
/// Supports the upstream form: an optional `#![proptest_config(expr)]` header
/// followed by attributed `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut *__rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Uniform choice between strategy alternatives yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__a, __b) => {
                if !(*__a == *__b) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            __a, __b
                        ),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__a, __b) => {
                if !(*__a == *__b) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                            __a, __b, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_patterns() {
        let mut rng = TestRng::deterministic(1, 0);
        for case in 0..200u64 {
            let mut rng2 = TestRng::deterministic(2, case);
            let ident = crate::string::generate_matching("[a-z][a-z0-9_]{0,6}", &mut rng2);
            assert!(!ident.is_empty() && ident.len() <= 7, "{ident:?}");
            assert!(ident.chars().next().unwrap().is_ascii_lowercase());
            let noise = crate::string::generate_matching("[a-zA-Z(),.:?! ]{0,40}", &mut rng);
            assert!(noise.chars().count() <= 40);
        }
    }

    #[test]
    fn oneof_and_filter_compose() {
        let strat = prop_oneof![Just(1u8), Just(2u8), 3u8..10];
        let filtered = strat.prop_filter("no twos", |v| *v != 2);
        for case in 0..100 {
            let mut rng = TestRng::deterministic(3, case);
            let v = filtered.generate(&mut rng);
            assert!(v != 2 && v < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_bounds(
            xs in crate::collection::vec(0usize..5, 1..4),
            pair in crate::array::uniform2(0u8..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..4).contains(&xs.len()));
            prop_assert!(pair[0] < 6 && pair[1] < 6);
            prop_assume!(flag || xs.len() < 4);
            prop_assert_eq!(xs.len(), xs.iter().filter(|v| **v < 5).count());
        }
    }
}
