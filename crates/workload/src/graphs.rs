//! Synthetic EDB generators.
//!
//! All generators are deterministic: random graphs take an explicit seed.
//! Node names are interned symbols `n0, n1, …` so tuples stay cheap.

use alexander_ir::{Const, Predicate};
use alexander_storage::{Database, Tuple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The node constant `n<i>`.
pub fn node(i: usize) -> Const {
    Const::sym(&format!("n{i}"))
}

fn insert_edges(db: &mut Database, pred: &str, edges: impl IntoIterator<Item = (usize, usize)>) {
    let p = Predicate::new(pred, 2);
    for (a, b) in edges {
        db.insert(p, Tuple::new(vec![node(a), node(b)]));
    }
}

/// A chain `n0 → n1 → … → n(len)` in relation `pred` (so `len` edges).
pub fn chain(pred: &str, len: usize) -> Database {
    let mut db = Database::new();
    insert_edges(&mut db, pred, (0..len).map(|i| (i, i + 1)));
    db
}

/// A cycle over `len` nodes in relation `pred`.
pub fn cycle(pred: &str, len: usize) -> Database {
    let mut db = Database::new();
    insert_edges(&mut db, pred, (0..len).map(|i| (i, (i + 1) % len)));
    db
}

/// A complete `k`-ary tree of the given depth: edges point parent → child in
/// `pred`. Returns the database and the number of nodes.
pub fn tree(pred: &str, k: usize, depth: usize) -> (Database, usize) {
    let mut db = Database::new();
    let mut edges = Vec::new();
    // Nodes are numbered in BFS order starting at 0.
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut newfrontier = Vec::with_capacity(frontier.len() * k);
        for &p in &frontier {
            for _ in 0..k {
                edges.push((p, next));
                newfrontier.push(next);
                next += 1;
            }
        }
        frontier = newfrontier;
    }
    insert_edges(&mut db, pred, edges);
    (db, next)
}

/// An `n × n` grid: edges right and down in `pred`. Node `(r, c)` is
/// `n(r*n + c)`.
pub fn grid(pred: &str, n: usize) -> Database {
    let mut db = Database::new();
    let mut edges = Vec::new();
    for r in 0..n {
        for c in 0..n {
            let id = r * n + c;
            if c + 1 < n {
                edges.push((id, id + 1));
            }
            if r + 1 < n {
                edges.push((id, id + n));
            }
        }
    }
    insert_edges(&mut db, pred, edges);
    db
}

/// A random digraph with `nodes` vertices and `edges` distinct edges (no
/// self-loops), deterministic in `seed`.
pub fn random_graph(pred: &str, nodes: usize, edges: usize, seed: u64) -> Database {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let p = Predicate::new(pred, 2);
    let max_edges = nodes * (nodes - 1);
    let target = edges.min(max_edges);
    let mut inserted = 0usize;
    while inserted < target {
        let a = rng.random_range(0..nodes);
        let b = rng.random_range(0..nodes);
        if a == b {
            continue;
        }
        if db.insert(p, Tuple::new(vec![node(a), node(b)])) {
            inserted += 1;
        }
    }
    db
}

/// A random DAG: like [`random_graph`] but edges only go from lower to
/// higher node numbers, so the graph is acyclic (win–move over it is
/// locally stratified).
pub fn random_dag(pred: &str, nodes: usize, edges: usize, seed: u64) -> Database {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let p = Predicate::new(pred, 2);
    let max_edges = nodes * (nodes - 1) / 2;
    let target = edges.min(max_edges);
    let mut inserted = 0usize;
    while inserted < target {
        let a = rng.random_range(0..nodes);
        let b = rng.random_range(0..nodes);
        if a == b {
            continue;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if db.insert(p, Tuple::new(vec![node(lo), node(hi)])) {
            inserted += 1;
        }
    }
    db
}

/// The same-generation EDB used throughout the magic-sets literature: a
/// complete binary tree of the given depth with `up` edges child → parent,
/// `down` edges parent → child, and `flat` edges linking siblings at the
/// leaves' generation. Query constant: leaf `n<first_leaf>`.
pub fn sg_tree(depth: usize) -> (Database, Const) {
    let (tree_db, nodes) = tree("down", 2, depth);
    let mut db = Database::new();
    let up = Predicate::new("up", 2);
    let down = Predicate::new("down", 2);
    let flat = Predicate::new("flat", 2);
    // down edges from the tree; up edges are their reverses.
    if let Some(rel) = tree_db.relation(down) {
        for row in rel.iter() {
            db.insert_row(down, row);
            db.insert_row(up, &[row[1], row[0]]);
        }
    }
    // flat: adjacent siblings among all nodes sharing a parent, plus a
    // self-flat at the root's children to give the recursion a base.
    let first_leaf = nodes - (1 << depth).min(nodes);
    for i in (1..nodes).step_by(2) {
        if i + 1 < nodes {
            db.insert(flat, Tuple::new(vec![node(i), node(i + 1)]));
            db.insert(flat, Tuple::new(vec![node(i + 1), node(i)]));
        }
    }
    (db, node(first_leaf.max(1)))
}

/// Merges two databases (convenience for assembling multi-relation EDBs).
pub fn merged(a: Database, b: &Database) -> Database {
    let mut out = a;
    out.merge(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_len_edges() {
        let db = chain("e", 10);
        assert_eq!(db.len_of(Predicate::new("e", 2)), 10);
    }

    #[test]
    fn cycle_wraps() {
        let db = cycle("e", 5);
        let rel = db.relation(Predicate::new("e", 2)).unwrap();
        assert!(rel.contains(&Tuple::new(vec![node(4), node(0)])));
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn binary_tree_node_and_edge_counts() {
        let (db, nodes) = tree("down", 2, 3);
        assert_eq!(nodes, 15); // 1 + 2 + 4 + 8
        assert_eq!(db.len_of(Predicate::new("down", 2)), 14);
    }

    #[test]
    fn grid_edge_count() {
        let db = grid("e", 3);
        // 3x3 grid: 2*3 horizontal + 2*3 vertical = 12.
        assert_eq!(db.len_of(Predicate::new("e", 2)), 12);
    }

    #[test]
    fn random_graph_is_deterministic_in_seed() {
        let a = random_graph("e", 20, 50, 7);
        let b = random_graph("e", 20, 50, 7);
        let c = random_graph("e", 20, 50, 8);
        let pa: Vec<String> = a
            .atoms_of(Predicate::new("e", 2))
            .iter()
            .map(|x| x.to_string())
            .collect();
        let pb: Vec<String> = b
            .atoms_of(Predicate::new("e", 2))
            .iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(pa, pb);
        let pc: Vec<String> = c
            .atoms_of(Predicate::new("e", 2))
            .iter()
            .map(|x| x.to_string())
            .collect();
        assert_ne!(pa, pc);
        assert_eq!(a.len_of(Predicate::new("e", 2)), 50);
    }

    #[test]
    fn random_graph_caps_at_max_edges() {
        let db = random_graph("e", 3, 100, 1);
        assert_eq!(db.len_of(Predicate::new("e", 2)), 6); // 3*2
    }

    #[test]
    fn random_dag_is_acyclic() {
        let db = random_dag("e", 30, 80, 3);
        // Every edge goes from a lower-numbered to a higher-numbered node.
        for a in db.atoms_of(Predicate::new("e", 2)) {
            let from: usize = a.terms[0].to_string()[1..].parse().unwrap();
            let to: usize = a.terms[1].to_string()[1..].parse().unwrap();
            assert!(from < to, "{a}");
        }
        assert_eq!(db.len_of(Predicate::new("e", 2)), 80);
    }

    #[test]
    fn sg_tree_has_all_three_relations() {
        let (db, seed) = sg_tree(3);
        assert!(db.len_of(Predicate::new("up", 2)) > 0);
        assert!(db.len_of(Predicate::new("down", 2)) > 0);
        assert!(db.len_of(Predicate::new("flat", 2)) > 0);
        assert_eq!(
            db.len_of(Predicate::new("up", 2)),
            db.len_of(Predicate::new("down", 2))
        );
        assert!(seed.to_string().starts_with('n'));
    }
}
