//! # alexander-workload
//!
//! Synthetic EDB generators (chains, cycles, trees, grids, seeded random
//! digraphs, the same-generation tree) and the benchmark program library
//! (transitive closure, ancestor, same-generation, win–move, reach/unreach,
//! Bry's loosely-stratified guard example).
//!
//! ```
//! use alexander_ir::Predicate;
//! use alexander_workload::{graphs, programs};
//!
//! let edb = graphs::chain("e", 100);
//! assert_eq!(edb.len_of(Predicate::new("e", 2)), 100);
//! let program = programs::transitive_closure();
//! assert!(program.is_idb(Predicate::new("tc", 2)));
//! ```

pub mod graphs;
pub mod programs;

pub use graphs::{chain, cycle, grid, merged, node, random_dag, random_graph, sg_tree, tree};
pub use programs::{
    ancestor, loose_guard, reach_unreach, same_generation, standard_suite, transitive_closure,
    transitive_closure_nonlinear, win_move, Workload,
};
