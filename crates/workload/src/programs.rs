//! The benchmark program library: the recursive queries every paper in the
//! magic-sets literature evaluates on, parsed from embedded sources.

use alexander_ir::{Atom, Program};
use alexander_parser::{parse, parse_atom};

fn must_parse(src: &str) -> Program {
    // invariant: the sources are compiled-in literals, exercised by tests.
    let parsed = parse(src).expect("embedded program parses");
    debug_assert!(parsed.program.validate().is_ok());
    parsed.program
}

/// Transitive closure over `e/2`:
/// `tc(X,Y) :- e(X,Y).  tc(X,Y) :- e(X,Z), tc(Z,Y).`
pub fn transitive_closure() -> Program {
    must_parse(
        "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
    )
}

/// Nonlinear transitive closure (`tc ∘ tc` recursion).
pub fn transitive_closure_nonlinear() -> Program {
    must_parse(
        "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ",
    )
}

/// Ancestor over `par/2` — transitive closure under its classical name.
pub fn ancestor() -> Program {
    must_parse(
        "
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
    )
}

/// The nonlinear same-generation program over `up/2`, `flat/2`, `down/2`.
pub fn same_generation() -> Program {
    must_parse(
        "
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
    )
}

/// The win–move game: `win(X) :- move(X, Y), !win(Y).` Not stratified; the
/// conditional fixpoint (or well-founded reading) decides it.
pub fn win_move() -> Program {
    must_parse(
        "
        win(X) :- move(X, Y), !win(Y).
        ",
    )
}

/// Reachability plus its stratified complement over `edge/2`, `node/1`,
/// with source `s`.
pub fn reach_unreach() -> Program {
    must_parse(
        "
        reach(X) :- source(S), edge(S, X).
        reach(Y) :- reach(X), edge(X, Y).
        unreach(X) :- node(X), !reach(X).
        ",
    )
}

/// Bry's loosely-stratified-but-unstratified shape: constant guards keep the
/// negative recursion acyclic at the atom level.
pub fn loose_guard() -> Program {
    must_parse(
        "
        p(X, a) :- q(X, Y), s(Z, X), !p(Z, b).
        ",
    )
}

/// A convenience bundle: a named program plus its canonical bound query.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub program: Program,
    pub query: Atom,
}

/// The standard suite used by the harness tables.
pub fn standard_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "ancestor-bf",
            program: ancestor(),
            query: parse_atom("anc(n0, X)").unwrap(),
        },
        Workload {
            name: "tc-bf",
            program: transitive_closure(),
            query: parse_atom("tc(n0, X)").unwrap(),
        },
        Workload {
            name: "sg-bf",
            program: same_generation(),
            query: parse_atom("sg(n1, X)").unwrap(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::analysis::{loosely_stratified, stratify};

    #[test]
    fn all_library_programs_validate() {
        for p in [
            transitive_closure(),
            transitive_closure_nonlinear(),
            ancestor(),
            same_generation(),
            win_move(),
            reach_unreach(),
            loose_guard(),
        ] {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn stratification_statuses_are_as_documented() {
        assert!(stratify(&transitive_closure()).is_ok());
        assert!(stratify(&reach_unreach()).is_ok());
        assert!(stratify(&win_move()).is_err());
        assert!(stratify(&loose_guard()).is_err());
        assert!(loosely_stratified(&loose_guard()).is_ok());
        assert!(loosely_stratified(&win_move()).is_err());
    }

    #[test]
    fn standard_suite_queries_match_their_programs() {
        for w in standard_suite() {
            assert!(
                w.program.is_idb(w.query.predicate()),
                "{}: query predicate not defined",
                w.name
            );
        }
    }
}
