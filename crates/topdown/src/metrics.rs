//! Counters for the OLDT engine — the top-down side of the power
//! comparison.

use std::fmt;

/// Machine-independent counters for an OLDT run.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct OldtMetrics {
    /// Distinct tabled calls (size of the call table).
    pub calls: u64,
    /// Distinct answers recorded across all tables.
    pub answers: u64,
    /// Resolution operations: clause resolutions, fact matches, answer
    /// deliveries, and negation checks.
    pub resolution_steps: u64,
    /// Consumer registrations (suspensions on a table).
    pub suspensions: u64,
}

impl fmt::Display for OldtMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} answers={} steps={} suspensions={}",
            self.calls, self.answers, self.resolution_steps, self.suspensions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        let m = OldtMetrics {
            calls: 1,
            answers: 2,
            resolution_steps: 3,
            suspensions: 4,
        };
        assert_eq!(m.to_string(), "calls=1 answers=2 steps=3 suspensions=4");
    }
}
