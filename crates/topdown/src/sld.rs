//! Plain SLD resolution — Prolog's strategy, *without* tabulation.
//!
//! This engine exists as the baseline OLDT is measured against (experiment
//! E11): depth-first resolution with no call table re-derives shared
//! subgoals exponentially often and loops forever on cyclic data. Both
//! failure modes are made observable rather than fatal: the engine takes a
//! resolution-step budget and reports whether the search space was
//! exhausted (`complete`) or the budget ran out first.
//!
//! Supports definite programs plus ground negation over extensional
//! predicates and built-ins (the same fragment as the naive evaluator).

use crate::metrics::OldtMetrics;
use alexander_ir::{
    match_atom, Atom, Builtin, FxHashMap, FxHashSet, Literal, Polarity, Predicate, Program, Rule,
    Subst, Term, Var,
};
use alexander_storage::Database;
use std::fmt;

/// Options for the SLD engine.
#[derive(Clone, Copy, Debug)]
pub struct SldOptions {
    /// Maximum resolution steps before giving up.
    pub step_budget: u64,
    /// Maximum derivation depth (guards against infinite left recursion
    /// even inside the budget).
    pub depth_limit: usize,
}

impl Default for SldOptions {
    fn default() -> SldOptions {
        SldOptions {
            step_budget: 1_000_000,
            depth_limit: 10_000,
        }
    }
}

/// The result of an SLD search.
#[derive(Clone, Debug)]
pub struct SldResult {
    /// Distinct ground answers found (within budget).
    pub answers: Vec<Atom>,
    /// True iff the whole search space was explored: the answer set is then
    /// complete. False means the budget or depth limit was hit.
    pub complete: bool,
    pub metrics: OldtMetrics,
}

/// Errors from the SLD engine.
#[derive(Clone, Debug)]
pub enum SldError {
    Invalid(Vec<alexander_ir::ProgramError>),
    /// The program negates an intensional predicate (needs tabling +
    /// stratification: use OLDT).
    NegatedIdb(Predicate),
    NonGroundNegation(String),
}

impl fmt::Display for SldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SldError::Invalid(errs) => {
                write!(f, "invalid program:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            SldError::NegatedIdb(p) => {
                write!(f, "SLD cannot negate intensional predicate {p}; use OLDT")
            }
            SldError::NonGroundNegation(l) => {
                write!(f, "negative literal `{l}` selected while non-ground")
            }
        }
    }
}

impl std::error::Error for SldError {}

/// One DFS node: remaining goals (with the depth that introduced each, for
/// depth accounting) and the environment.
struct Node {
    goals: Vec<(Literal, usize)>,
    subst: Subst,
}

/// Renames `rule` for use at `depth`: along one derivation path each depth
/// introduces at most one rule instance, so depth-indexed names are fresh
/// where it matters and keep the interner small across the exponential
/// search.
fn rename_at_depth(rule: &Rule, depth: usize) -> Rule {
    let mut map: FxHashMap<Var, Var> = FxHashMap::default();
    let mut rn = |t: Term| match t {
        Term::Const(_) => t,
        Term::Var(v) => Term::Var(
            *map.entry(v)
                .or_insert_with(|| Var::new(&format!("_D{depth}_{}", v.name()))),
        ),
    };
    Rule {
        head: Atom {
            pred: rule.head.pred,
            terms: rule.head.terms.iter().map(|&t| rn(t)).collect(),
        },
        body: rule
            .body
            .iter()
            .map(|l| Literal {
                atom: Atom {
                    pred: l.atom.pred,
                    terms: l.atom.terms.iter().map(|&t| rn(t)).collect(),
                },
                polarity: l.polarity,
            })
            .collect(),
    }
}

/// Answers `query` by plain SLD resolution under `opts`.
pub fn sld_query(
    program: &Program,
    edb: &Database,
    query: &Atom,
    opts: SldOptions,
) -> Result<SldResult, SldError> {
    program.validate().map_err(SldError::Invalid)?;
    let idb = program.idb_predicates();
    for r in &program.rules {
        for l in &r.body {
            if l.is_negative() && idb.contains(&l.atom.predicate()) {
                return Err(SldError::NegatedIdb(l.atom.predicate()));
            }
        }
    }

    let mut full_edb = edb.clone();
    for f in &program.facts {
        // invariant: `program.validate()` above rejects non-ground facts.
        full_edb.insert_atom(f).expect("validated facts are ground");
    }
    let mut rules_by_pred: FxHashMap<Predicate, Vec<Rule>> = FxHashMap::default();
    for r in &program.rules {
        rules_by_pred
            .entry(r.head.predicate())
            .or_default()
            .push(r.clone());
    }

    let mut metrics = OldtMetrics::default();
    let mut answers: Vec<Atom> = Vec::new();
    let mut answer_set: FxHashSet<Atom> = FxHashSet::default();
    let mut complete = true;

    let mut stack: Vec<Node> = vec![Node {
        goals: vec![(Literal::pos(query.clone()), 0)],
        subst: Subst::new(),
    }];

    while let Some(mut node) = stack.pop() {
        if metrics.resolution_steps >= opts.step_budget {
            complete = false;
            break;
        }
        let Some((lit, depth)) = node.goals.pop() else {
            let answer = node.subst.apply_atom(query);
            if answer.is_ground() && answer_set.insert(answer.clone()) {
                answers.push(answer);
                metrics.answers += 1;
            }
            continue;
        };
        if depth >= opts.depth_limit {
            complete = false;
            continue;
        }
        let goal = node.subst.apply_atom(&lit.atom);

        // Built-ins.
        if let Some(b) = Builtin::of(goal.predicate()) {
            let Some(args) = goal.ground_args() else {
                return Err(SldError::NonGroundNegation(goal.to_string()));
            };
            metrics.resolution_steps += 1;
            if b.eval(args[0], args[1]) == (lit.polarity == Polarity::Positive) {
                stack.push(node);
            }
            continue;
        }

        match (lit.polarity, idb.contains(&goal.predicate())) {
            (Polarity::Negative, _) => {
                if !goal.is_ground() {
                    return Err(SldError::NonGroundNegation(goal.to_string()));
                }
                metrics.resolution_steps += 1;
                if !full_edb.contains_atom(&goal) {
                    stack.push(node);
                }
            }
            (Polarity::Positive, false) => {
                if let Some(rel) = full_edb.relation(goal.predicate()) {
                    let facts: Vec<Atom> = rel
                        .iter()
                        .map(|row| alexander_storage::row_atom(goal.pred, row))
                        .collect();
                    for fact in facts {
                        metrics.resolution_steps += 1;
                        let mut s = node.subst.clone();
                        if match_atom(&goal, &fact, &mut s) {
                            stack.push(Node {
                                goals: node.goals.clone(),
                                subst: s,
                            });
                        }
                    }
                }
            }
            (Polarity::Positive, true) => {
                // No tabling: every occurrence re-resolves against the rules.
                // Push alternatives in reverse so the stack pops the FIRST
                // clause first (Prolog's clause order).
                for rule in rules_by_pred
                    .get(&goal.predicate())
                    .into_iter()
                    .flatten()
                    .rev()
                {
                    metrics.resolution_steps += 1;
                    let fresh = rename_at_depth(rule, depth + 1);
                    let mut s = node.subst.clone();
                    if alexander_ir::unify_atoms(&goal, &fresh.head, &mut s) {
                        let mut goals = node.goals.clone();
                        // Push body in reverse so it is solved left to right.
                        for l in fresh.body.iter().rev() {
                            goals.push((l.clone(), depth + 1));
                        }
                        stack.push(Node { goals, subst: s });
                    }
                }
            }
        }
    }

    answers.sort();
    Ok(SldResult {
        answers,
        complete,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    fn run(src: &str, q: &str, opts: SldOptions) -> SldResult {
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        sld_query(&parsed.program, &edb, &parse_atom(q).unwrap(), opts).unwrap()
    }

    const ANCESTOR: &str = "
        par(a, b). par(b, c). par(c, d).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    ";

    #[test]
    fn finds_all_answers_on_acyclic_data() {
        let r = run(ANCESTOR, "anc(a, X)", SldOptions::default());
        assert!(r.complete);
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["anc(a, b)", "anc(a, c)", "anc(a, d)"]);
    }

    #[test]
    fn cyclic_data_exhausts_the_budget() {
        let r = run(
            "
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ",
            "tc(a, X)",
            SldOptions {
                step_budget: 20_000,
                depth_limit: 500,
            },
        );
        assert!(!r.complete, "SLD must not terminate on a cycle");
        // It still finds the answers before looping (both a and b are
        // reachable).
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn depth_limit_cuts_left_recursion() {
        // Nonlinear tc(X,Y) :- tc(X,Z), tc(Z,Y) left-recurses immediately.
        let r = run(
            "
            e(a, b).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ",
            "tc(a, X)",
            SldOptions {
                step_budget: 50_000,
                depth_limit: 30,
            },
        );
        assert!(!r.complete);
        assert!(r.answers.iter().any(|a| a.to_string() == "tc(a, b)"));
    }

    #[test]
    fn sld_redoes_work_oldt_tables() {
        // Same-generation on a small tree: SLD revisits sg subgoals; OLDT
        // tables them. Compare step counts on identical inputs.
        let src = "
            up(a, g1). up(b, g1). up(g1, h1). up(g2, h1).
            flat(h1, h1). flat(g1, g2).
            down(h1, g3). down(g2, c). down(g3, d).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ";
        let sld = run(src, "sg(a, Y)", SldOptions::default());
        assert!(sld.complete);
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        let oldt = crate::oldt::oldt_query(&parsed.program, &edb, &parse_atom("sg(a, Y)").unwrap())
            .unwrap();
        let mut sld_ans: Vec<String> = sld.answers.iter().map(|a| a.to_string()).collect();
        let mut oldt_ans: Vec<String> = oldt.answers.iter().map(|a| a.to_string()).collect();
        sld_ans.sort();
        oldt_ans.sort();
        oldt_ans.dedup();
        assert_eq!(sld_ans, oldt_ans);
        assert!(
            sld.metrics.resolution_steps >= oldt.metrics.resolution_steps,
            "sld {} vs oldt {}",
            sld.metrics.resolution_steps,
            oldt.metrics.resolution_steps
        );
    }

    #[test]
    fn negation_on_edb_and_builtins() {
        let r = run(
            "
            v(1). v(2). v(3). bad(2).
            good(X) :- v(X), !bad(X), lt(X, 3).
            ",
            "good(X)",
            SldOptions::default(),
        );
        assert!(r.complete);
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["good(1)"]);
    }

    #[test]
    fn negated_idb_is_rejected() {
        let parsed = parse("q(a). p(X) :- q(X). r(X) :- q(X), !p(X).").unwrap();
        let edb = Database::from_program(&parsed.program);
        let err = sld_query(
            &parsed.program,
            &edb,
            &parse_atom("r(X)").unwrap(),
            SldOptions::default(),
        );
        assert!(matches!(err, Err(SldError::NegatedIdb(_))));
    }
}
