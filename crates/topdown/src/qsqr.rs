//! QSQR — Query-Subquery, recursive variant (Vieille 1986).
//!
//! The third member of the goal-directed family the 1989 literature
//! compares (Alexander templates, magic sets, QSQR/OLDT). Where OLDT
//! suspends consumers and resumes them answer by answer, QSQR keeps two
//! global tables per adorned predicate —
//!
//! * `input_p^a`: the bound-argument tuples of every subquery issued, and
//! * `ans_p^a`: the full answers derived for them —
//!
//! and processes subqueries *recursively*: meeting an intensional body
//! literal registers its input and recursively solves it before consuming
//! its answers. Recursive cycles are broken by an in-progress marker; an
//! outer loop restarts the whole process until neither table grows.
//!
//! A naive restart re-joins every input against every answer ever derived,
//! which blows the step count up by orders of magnitude against OLDT on
//! deep recursions. Three refinements keep the restarts incremental while
//! leaving the input/answer tables (and hence the demand-set comparisons)
//! untouched:
//!
//! * answer tables keep insertion order and a posting list per bound-
//!   argument projection, so a subquery consumes only answers that can
//!   unify with its input;
//! * each `(key, input)` pair remembers how long every answer table was
//!   when it last completed a pass, and later passes evaluate each rule as
//!   semi-naive delta variants — one positive intensional literal reads
//!   only the *new* answers, literals before it only the *old* ones;
//! * rules whose bodies touch no positive intensional literal derive
//!   nothing new after their first pass over an input and are skipped.
//!
//! Its `input` tables must coincide with the magic/call demand sets and
//! with OLDT's call tables on the same SIP — asserted by the test suite and
//! experiment E13, the four-way power comparison.

use crate::metrics::OldtMetrics;
use alexander_eval::{Budget, CancelHandle, Completion, Governor};
use alexander_ir::{
    Adornment, Atom, Bf, Builtin, Const, FxHashMap, FxHashSet, Polarity, Predicate, Program, Rule,
    Subst, Term,
};
use alexander_storage::{Database, Tuple};
use alexander_transform::sip_order;
use std::fmt;

/// Errors from the QSQR engine.
#[derive(Clone, Debug)]
pub enum QsqrError {
    Invalid(Vec<alexander_ir::ProgramError>),
    /// Negation requires completed subquery tables; QSQR here supports the
    /// same fragment as OLDT (stratified programs).
    NotStratified(alexander_ir::analysis::NotStratified),
    NonGroundNegation(String),
}

impl fmt::Display for QsqrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsqrError::Invalid(errs) => {
                write!(f, "invalid program:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            QsqrError::NotStratified(e) => write!(f, "{e}"),
            QsqrError::NonGroundNegation(l) => {
                write!(f, "negative literal `{l}` selected while non-ground")
            }
        }
    }
}

impl std::error::Error for QsqrError {}

/// Options for the QSQR engine.
#[derive(Clone, Debug, Default)]
pub struct QsqrOptions {
    /// Resource limits. `max_facts` bounds tabled answers, `max_steps`
    /// bounds resolution steps, `max_rounds` bounds global restarts.
    pub budget: Budget,
    /// Cooperative cancellation token, checked between resolution steps.
    pub cancel: Option<CancelHandle>,
}

impl QsqrOptions {
    /// Builder: attach a resource budget.
    pub fn with_budget(mut self, budget: Budget) -> QsqrOptions {
        self.budget = budget;
        self
    }

    /// Builder: attach a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelHandle) -> QsqrOptions {
        self.cancel = Some(cancel);
        self
    }
}

/// The result of a QSQR run.
#[derive(Clone, Debug)]
pub struct QsqrResult {
    /// Ground instances of the query.
    pub answers: Vec<Atom>,
    pub metrics: OldtMetrics,
    /// Size of each input table: `(predicate, adornment) → #subqueries`.
    pub inputs_by_pred: FxHashMap<(Predicate, String), u64>,
    /// Size of each answer table.
    pub answers_by_pred: FxHashMap<(Predicate, String), u64>,
    /// Number of global restarts until the tables stabilised.
    pub restarts: u64,
    /// Whether the tables stabilised. On a budget/cancel stop the answers
    /// are a subset of the complete run's answers (the engine derives
    /// answers in the same deterministic order and only adds, never
    /// retracts, so an early stop is a prefix of the full derivation).
    pub completion: Completion,
}

type Key = (Predicate, Adornment);

/// Answer table for one adorned predicate. Insertion order is kept so the
/// per-input cursors below stay stable; `by_input` posts each answer under
/// its projection onto the adornment's bound positions, so consumption for
/// a subquery only ever touches answers that can unify with its input.
#[derive(Default)]
struct AnswerTable {
    list: Vec<Atom>,
    set: FxHashSet<Atom>,
    by_input: FxHashMap<Tuple, Vec<usize>>,
}

/// How a delta variant consumes one positive intensional literal: answers
/// older than the input's cursor, newer, or everything.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    All,
    Old,
    New,
}

struct Engine<'a> {
    rules_by_pred: FxHashMap<Predicate, Vec<Rule>>,
    edb: &'a Database,
    idb: FxHashSet<Predicate>,
    inputs: FxHashMap<Key, FxHashSet<Tuple>>,
    answers: FxHashMap<Key, AnswerTable>,
    /// Per processed `(key, input)`: the length of every answer table at
    /// the start of its last *completed* pass. Answers at or past the
    /// cursor are that input's delta on the next pass.
    cursors: FxHashMap<(Key, Tuple), FxHashMap<Key, usize>>,
    /// Keys currently being solved (cycle breaker).
    in_progress: FxHashSet<Key>,
    metrics: OldtMetrics,
    changed: bool,
    gov: Governor,
    /// Latched once the governor trips; every recursion unwinds promptly.
    stopped: bool,
}

fn adornment_of(goal: &Atom, s: &Subst) -> Adornment {
    Adornment(
        goal.terms
            .iter()
            .map(|&t| {
                if s.walk(t).is_ground() {
                    Bf::Bound
                } else {
                    Bf::Free
                }
            })
            .collect(),
    )
}

fn bound_tuple(goal: &Atom, s: &Subst, ad: &Adornment) -> Tuple {
    let consts: Vec<Const> = goal
        .terms
        .iter()
        .zip(&ad.0)
        .filter(|(_, bf)| **bf == Bf::Bound)
        // invariant: the adornment marks a position Bound only when the
        // call substitution grounds it.
        .map(|(&t, _)| s.walk(t).as_const().expect("bound position is ground"))
        .collect();
    Tuple::from(consts)
}

/// The projection of a ground answer onto the adornment's bound positions —
/// the posting-list key its consumers probe with.
fn projection(answer: &Atom, ad: &Adornment) -> Tuple {
    let consts: Vec<Const> = answer
        .terms
        .iter()
        .zip(&ad.0)
        .filter(|(_, bf)| **bf == Bf::Bound)
        .map(|(&t, _)| t.as_const().expect("answers are ground"))
        .collect();
    Tuple::from(consts)
}

impl<'a> Engine<'a> {
    /// Governance check between resolution steps: latches `stopped` so the
    /// depth-first recursion unwinds without doing further work.
    fn tripped(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if self.gov.check_interrupt().is_break()
            || self
                .gov
                .check_steps(self.metrics.resolution_steps)
                .is_break()
        {
            self.stopped = true;
        }
        self.stopped
    }

    /// Registers a subquery; returns its key and bound-argument tuple.
    fn register(&mut self, goal: &Atom, s: &Subst) -> (Key, Tuple) {
        let ad = adornment_of(goal, s);
        let key = (goal.predicate(), ad.clone());
        let t = bound_tuple(goal, s, &ad);
        if self
            .inputs
            .entry(key.clone())
            .or_default()
            .insert(t.clone())
        {
            self.metrics.calls += 1;
            self.changed = true;
        }
        (key, t)
    }

    /// Solves every registered input of `key` against the rules, recursing
    /// into subqueries. Idempotent within one restart; cycles fall through
    /// to the outer restart loop.
    ///
    /// The first pass over an input evaluates each rule in full. Later
    /// passes evaluate semi-naive delta variants: with the input's cursors
    /// splitting every answer table into old and new halves, variant `j`
    /// reads only new answers at the `j`-th positive intensional literal,
    /// only old ones before it, and everything after it. Combinations of
    /// purely old answers were joined by the previous completed pass, so a
    /// quiescent input costs one probe per variant rather than a re-join of
    /// the full tables.
    fn solve(&mut self, key: &Key) {
        if self.in_progress.contains(key) || self.tripped() {
            return;
        }
        self.in_progress.insert(key.clone());
        // Snapshot the inputs: new ones found while solving are caught by
        // the restart loop.
        let inputs: Vec<Tuple> = self
            .inputs
            .get(key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        let rules = self.rules_by_pred.get(&key.0).cloned().unwrap_or_default();
        for input in inputs {
            if self.tripped() {
                break;
            }
            let snapshot: FxHashMap<Key, usize> = self
                .answers
                .iter()
                .map(|(k, t)| (k.clone(), t.list.len()))
                .collect();
            let meta = (key.clone(), input.clone());
            let prev = self.cursors.get(&meta).cloned();
            let first_pass = prev.is_none();
            let thresholds = prev.unwrap_or_default();
            for rule in &rules {
                let has_pos_idb = rule.body.iter().any(|l| {
                    l.polarity == Polarity::Positive && self.idb.contains(&l.atom.predicate())
                });
                if !first_pass && !has_pos_idb {
                    // The body reads only static tables: the first pass
                    // already derived everything this rule can.
                    continue;
                }
                let fresh = rule.rectified();
                // Bind the head's bound positions to the input tuple.
                let mut s = Subst::new();
                let mut ok = true;
                let mut bi = 0usize;
                for (t, bf) in fresh.head.terms.iter().zip(&key.1 .0) {
                    if *bf == Bf::Bound {
                        let c = Term::Const(input.get(bi));
                        bi += 1;
                        if !alexander_ir::unify_terms(*t, c, &mut s) {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let bound_vars: FxHashSet<alexander_ir::Var> = fresh
                    .head
                    .vars()
                    .filter(|v| s.walk(Term::Var(*v)).is_ground())
                    .collect();
                let goals = sip_order(&fresh.body, &bound_vars);
                let idb_positions: Vec<usize> = goals
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| {
                        l.polarity == Polarity::Positive && self.idb.contains(&l.atom.predicate())
                    })
                    .map(|(p, _)| p)
                    .collect();
                if first_pass || idb_positions.is_empty() {
                    self.metrics.resolution_steps += 1;
                    self.body(&fresh.head, &goals, 0, s, key, &[], &thresholds);
                } else {
                    for delta_ord in 0..idb_positions.len() {
                        if self.tripped() {
                            break;
                        }
                        let mut modes = vec![Mode::All; goals.len()];
                        for (o, &p) in idb_positions.iter().enumerate() {
                            modes[p] = match o.cmp(&delta_ord) {
                                std::cmp::Ordering::Less => Mode::Old,
                                std::cmp::Ordering::Equal => Mode::New,
                                std::cmp::Ordering::Greater => Mode::All,
                            };
                        }
                        self.metrics.resolution_steps += 1;
                        self.body(&fresh.head, &goals, 0, s.clone(), key, &modes, &thresholds);
                    }
                }
            }
            if !self.stopped {
                self.cursors.insert(meta, snapshot);
            }
        }
        self.in_progress.remove(key);
    }

    /// Depth-first body evaluation (tuple-at-a-time over posted tables).
    ///
    /// `modes` selects, per goal position, which half of a positive
    /// intensional literal's answer table to consume relative to
    /// `thresholds` (the input's cursors); an empty slice means everything.
    #[allow(clippy::too_many_arguments)]
    fn body(
        &mut self,
        head: &Atom,
        goals: &[alexander_ir::Literal],
        i: usize,
        s: Subst,
        key: &Key,
        modes: &[Mode],
        thresholds: &FxHashMap<Key, usize>,
    ) {
        if self.tripped() {
            return;
        }
        if i == goals.len() {
            let answer = s.apply_atom(head);
            debug_assert!(answer.is_ground());
            if self
                .answers
                .get(key)
                .is_some_and(|t| t.set.contains(&answer))
            {
                return;
            }
            // Claim-before-insert, as in the bottom-up evaluators.
            if self.gov.claim_fact().is_break() {
                self.stopped = true;
                return;
            }
            let table = self.answers.entry(key.clone()).or_default();
            let idx = table.list.len();
            table
                .by_input
                .entry(projection(&answer, &key.1))
                .or_default()
                .push(idx);
            table.set.insert(answer.clone());
            table.list.push(answer);
            self.metrics.answers += 1;
            self.changed = true;
            return;
        }
        let lit = &goals[i];
        let goal = s.apply_atom(&lit.atom);

        if let Some(b) = Builtin::of(goal.predicate()) {
            // invariant: SIP reordering schedules built-ins after their
            // variables are bound, and validation rejects unbindable ones.
            let args = goal.ground_args().expect("SIP grounds built-ins");
            self.metrics.resolution_steps += 1;
            if b.eval(args[0], args[1]) == (lit.polarity == Polarity::Positive) {
                self.body(head, goals, i + 1, s, key, modes, thresholds);
            }
            return;
        }

        match (lit.polarity, self.idb.contains(&goal.predicate())) {
            (Polarity::Positive, false) => {
                // Extensional: probe on the ground columns, as OLDT does,
                // so the step count reflects matches rather than table size.
                if let Some(rel) = self.edb.relation(goal.predicate()) {
                    let cols: Vec<usize> = goal
                        .terms
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.is_ground())
                        .map(|(c, _)| c)
                        .collect();
                    let mask = alexander_storage::Mask::of_columns(&cols);
                    let probe_key: Vec<Const> = cols
                        .iter()
                        // invariant: `cols` holds the positions where
                        // `goal.terms[c]` is a constant.
                        .map(|&c| goal.terms[c].as_const().unwrap())
                        .collect();
                    let matches: Vec<Atom> = rel
                        .probe(mask, &probe_key)
                        .0
                        .map(|row| alexander_storage::row_atom(goal.pred, row))
                        .collect();
                    for fact in matches {
                        self.metrics.resolution_steps += 1;
                        let mut s2 = s.clone();
                        if alexander_ir::match_atom(&goal, &fact, &mut s2) {
                            self.body(head, goals, i + 1, s2, key, modes, thresholds);
                        }
                    }
                }
            }
            (Polarity::Positive, true) => {
                let (sub, input_t) = self.register(&goal, &s);
                self.solve(&sub);
                if self.stopped {
                    return;
                }
                let mode = modes.get(i).copied().unwrap_or(Mode::All);
                let cut = thresholds.get(&sub).copied().unwrap_or(0);
                let candidates: Vec<Atom> = self
                    .answers
                    .get(&sub)
                    .map(|t| {
                        let posting = t.by_input.get(&input_t).map_or(&[][..], |v| v.as_slice());
                        // Posting entries ascend, so the cursor splits the
                        // list into old and new with one binary search.
                        let split = posting.partition_point(|&idx| idx < cut);
                        let slice = match mode {
                            Mode::All => posting,
                            Mode::Old => &posting[..split],
                            Mode::New => &posting[split..],
                        };
                        slice.iter().map(|&idx| t.list[idx].clone()).collect()
                    })
                    .unwrap_or_default();
                for a in candidates {
                    self.metrics.resolution_steps += 1;
                    let mut s2 = s.clone();
                    if alexander_ir::match_atom(&goal, &a, &mut s2) {
                        self.body(head, goals, i + 1, s2, key, modes, thresholds);
                    }
                }
            }
            (Polarity::Negative, false) => {
                debug_assert!(goal.is_ground());
                self.metrics.resolution_steps += 1;
                if !self.edb.contains_atom(&goal) {
                    self.body(head, goals, i + 1, s, key, modes, thresholds);
                }
            }
            (Polarity::Negative, true) => {
                // Stratified: complete the subquery first. The outer restart
                // loop guarantees completion before the final verdict, and
                // stratification guarantees the recursion below terminates.
                debug_assert!(goal.is_ground());
                let (sub, _) = self.register(&goal, &s);
                self.solve(&sub);
                if self.stopped {
                    // The subquery's tables may be incomplete; a negative
                    // conclusion from them would be unsound. Drop the branch.
                    return;
                }
                self.metrics.resolution_steps += 1;
                let any = self
                    .answers
                    .get(&sub)
                    .is_some_and(|t| t.set.contains(&goal));
                if !any {
                    self.body(head, goals, i + 1, s, key, modes, thresholds);
                }
            }
        }
    }
}

/// Answers `query` by recursive QSQR.
pub fn qsqr_query(
    program: &Program,
    edb: &Database,
    query: &Atom,
) -> Result<QsqrResult, QsqrError> {
    qsqr_query_opts(program, edb, query, QsqrOptions::default())
}

/// [`qsqr_query`] with explicit options.
pub fn qsqr_query_opts(
    program: &Program,
    edb: &Database,
    query: &Atom,
    opts: QsqrOptions,
) -> Result<QsqrResult, QsqrError> {
    program.validate().map_err(QsqrError::Invalid)?;
    let idb = program.idb_predicates();
    let has_idb_negation = program.rules.iter().any(|r| {
        r.body
            .iter()
            .any(|l| l.is_negative() && idb.contains(&l.atom.predicate()))
    });
    if has_idb_negation {
        alexander_ir::analysis::stratify(program).map_err(QsqrError::NotStratified)?;
    }

    let mut full_edb = edb.clone();
    for f in &program.facts {
        // invariant: `program.validate()` above rejects non-ground facts.
        full_edb.insert_atom(f).expect("validated facts are ground");
    }
    let mut rules_by_pred: FxHashMap<Predicate, Vec<Rule>> = FxHashMap::default();
    for r in &program.rules {
        rules_by_pred
            .entry(r.head.predicate())
            .or_default()
            .push(r.clone());
    }

    let mut engine = Engine {
        rules_by_pred,
        edb: &full_edb,
        idb: idb.clone(),
        inputs: FxHashMap::default(),
        answers: FxHashMap::default(),
        cursors: FxHashMap::default(),
        in_progress: FxHashSet::default(),
        metrics: OldtMetrics::default(),
        changed: false,
        gov: Governor::new(opts.budget, opts.cancel.clone()),
        stopped: false,
    };

    let mut restarts = 0u64;
    let answers: Vec<Atom> = if idb.contains(&query.predicate()) {
        let s = Subst::new();
        let (seed, _) = engine.register(query, &s);
        // Restart until neither inputs nor answers grow. A restart counts
        // as a "round" against the budget.
        loop {
            if engine.gov.note_round().is_break() {
                engine.stopped = true;
                break;
            }
            restarts += 1;
            engine.changed = false;
            let keys: Vec<Key> = engine.inputs.keys().cloned().collect();
            for k in keys {
                engine.solve(&k);
            }
            if engine.stopped || !engine.changed {
                break;
            }
        }
        engine
            .answers
            .get(&seed)
            .map(|t| {
                t.list
                    .iter()
                    .filter(|a| {
                        let mut s = Subst::new();
                        alexander_ir::match_atom(query, a, &mut s)
                    })
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    } else {
        full_edb
            .atoms_of(query.predicate())
            .into_iter()
            .filter(|a| {
                let mut s = Subst::new();
                alexander_ir::match_atom(query, a, &mut s)
            })
            .collect()
    };

    let mut answers = answers;
    answers.sort();

    let inputs_by_pred = engine
        .inputs
        .iter()
        .map(|(k, v)| ((k.0, k.1.suffix()), v.len() as u64))
        .collect();
    let answers_by_pred = engine
        .answers
        .iter()
        .map(|(k, v)| ((k.0, k.1.suffix()), v.list.len() as u64))
        .collect();

    Ok(QsqrResult {
        answers,
        metrics: engine.metrics,
        inputs_by_pred,
        answers_by_pred,
        restarts,
        completion: engine.gov.completion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    fn run(src: &str, q: &str) -> QsqrResult {
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        qsqr_query(&parsed.program, &edb, &parse_atom(q).unwrap()).unwrap()
    }

    const ANCESTOR: &str = "
        par(a, b). par(b, c). par(c, d). par(x, y).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    ";

    #[test]
    fn bound_free_ancestor() {
        let r = run(ANCESTOR, "anc(a, X)");
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["anc(a, b)", "anc(a, c)", "anc(a, d)"]);
        // Demand set = the reachable chain, like OLDT and the templates.
        let key = (Predicate::new("anc", 2), "bf".to_string());
        assert_eq!(r.inputs_by_pred[&key], 4);
    }

    #[test]
    fn agrees_with_oldt_tables() {
        let parsed = parse(ANCESTOR).unwrap();
        let edb = Database::from_program(&parsed.program);
        let q = parse_atom("anc(a, X)").unwrap();
        let qs = qsqr_query(&parsed.program, &edb, &q).unwrap();
        let ol = crate::oldt::oldt_query(&parsed.program, &edb, &q).unwrap();
        assert_eq!(qs.metrics.calls, ol.metrics.calls);
        assert_eq!(qs.metrics.answers, ol.metrics.answers);
        let mut a1: Vec<String> = qs.answers.iter().map(|a| a.to_string()).collect();
        let mut a2: Vec<String> = ol.answers.iter().map(|a| a.to_string()).collect();
        a1.sort();
        a2.sort();
        a2.dedup();
        assert_eq!(a1, a2);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let r = run(
            "
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ",
            "tc(a, X)",
        );
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["tc(a, a)", "tc(a, b)"]);
        assert!(r.restarts >= 2, "recursion needs at least one restart");
    }

    #[test]
    fn nonlinear_same_generation() {
        let r = run(
            "
            up(a, g1). up(b, g1).
            flat(g1, g1).
            down(g1, c). down(g1, d).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            ",
            "sg(a, Y)",
        );
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["sg(a, c)", "sg(a, d)"]);
    }

    #[test]
    fn stratified_negation() {
        let r = run(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
            ",
            "unreach(X)",
        );
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["unreach(s)", "unreach(z)"]);
    }

    #[test]
    fn unstratified_negation_is_rejected() {
        let parsed = parse("move(a, b). win(X) :- move(X, Y), !win(Y).").unwrap();
        let edb = Database::from_program(&parsed.program);
        assert!(matches!(
            qsqr_query(&parsed.program, &edb, &parse_atom("win(a)").unwrap()),
            Err(QsqrError::NotStratified(_))
        ));
    }

    #[test]
    fn step_budget_yields_sound_answer_subset() {
        let parsed = parse(ANCESTOR).unwrap();
        let edb = Database::from_program(&parsed.program);
        let q = parse_atom("anc(X, Y)").unwrap();
        let full = qsqr_query(&parsed.program, &edb, &q).unwrap();
        assert!(full.completion.is_complete());
        for max in [1u64, 3, 8] {
            let r = qsqr_query_opts(
                &parsed.program,
                &edb,
                &q,
                QsqrOptions::default().with_budget(Budget::default().with_max_steps(max)),
            )
            .unwrap();
            assert!(!r.completion.is_complete(), "max_steps {max}");
            for a in &r.answers {
                assert!(full.answers.contains(a), "spurious answer {a}");
            }
            assert!(r.answers.len() < full.answers.len());
        }
    }

    #[test]
    fn restart_budget_limits_restarts() {
        let parsed = parse(
            "
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let r = qsqr_query_opts(
            &parsed.program,
            &edb,
            &parse_atom("tc(a, X)").unwrap(),
            QsqrOptions::default().with_budget(Budget::default().with_max_rounds(1)),
        )
        .unwrap();
        assert_eq!(r.restarts, 1);
        assert!(!r.completion.is_complete());
    }

    #[test]
    fn cancelled_query_reports_cancelled() {
        let parsed = parse(ANCESTOR).unwrap();
        let edb = Database::from_program(&parsed.program);
        let handle = CancelHandle::default();
        handle.cancel();
        let r = qsqr_query_opts(
            &parsed.program,
            &edb,
            &parse_atom("anc(a, X)").unwrap(),
            QsqrOptions::default().with_cancel(handle),
        )
        .unwrap();
        assert_eq!(r.completion, Completion::Cancelled);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn ground_and_free_queries() {
        let yes = run(ANCESTOR, "anc(a, d)");
        assert_eq!(yes.answers.len(), 1);
        let no = run(ANCESTOR, "anc(d, a)");
        assert!(no.answers.is_empty());
        let all = run(ANCESTOR, "anc(X, Y)");
        assert_eq!(all.answers.len(), 7);
    }
}
