//! # alexander-topdown
//!
//! OLDT resolution — top-down evaluation with tabulation (Tamaki & Sato
//! 1986). This is the goal-directed strategy the Alexander templates
//! simulate bottom-up; the engine is instrumented so the call and answer
//! tables can be compared fact-for-fact with the `call_…` / `ans_…`
//! relations of the transformed program (the reproduced paper's power
//! theorem, experiment E3).
//!
//! ```
//! use alexander_parser::{parse, parse_atom};
//! use alexander_storage::Database;
//!
//! let parsed = parse("
//!     par(a, b). par(b, c).
//!     anc(X, Y) :- par(X, Y).
//!     anc(X, Y) :- par(X, Z), anc(Z, Y).
//! ").unwrap();
//! let edb = Database::from_program(&parsed.program);
//! let r = alexander_topdown::oldt_query(
//!     &parsed.program, &edb, &parse_atom("anc(a, X)").unwrap()).unwrap();
//! assert_eq!(r.answers.len(), 2);
//! assert_eq!(r.metrics.calls, 3); // anc(a,_), anc(b,_), anc(c,_)
//! ```

pub mod metrics;
pub mod oldt;
pub mod qsqr;
pub mod sld;

pub use metrics::OldtMetrics;
pub use oldt::{oldt_query, oldt_query_opts, OldtError, OldtOptions, OldtResult};
pub use qsqr::{qsqr_query, qsqr_query_opts, QsqrError, QsqrOptions, QsqrResult};
pub use sld::{sld_query, SldError, SldOptions, SldResult};
