//! OLDT resolution: top-down (SLD) evaluation with tabulation
//! (Tamaki & Sato 1986).
//!
//! Calls to intensional predicates are *tabled*: the first occurrence of a
//! call (up to variable renaming) becomes a **generator** that resolves the
//! call against the program's rules; later occurrences become **consumers**
//! suspended on the call's answer table. Every answer is delivered to every
//! consumer exactly once, so repeated subqueries cost table lookups instead
//! of recomputation — this is what makes top-down evaluation terminate on
//! recursive Datalog and what the Alexander templates simulate bottom-up.
//!
//! The engine is instrumented for the power comparison (experiment E3):
//! [`OldtResult::calls_by_pred`] is the call table (one entry per distinct
//! tabled call) and [`OldtResult::answers_by_pred`] the answer table,
//! the two quantities the Alexander-transformed program materialises as
//! `call_…` and `ans_…` facts.
//!
//! Negation: ground negative literals over extensional predicates are
//! checked against the database; ground negative intensional literals force
//! the completion of their subquery's table first (admissible because the
//! program must be stratified — checked up front).

use crate::metrics::OldtMetrics;
use alexander_eval::{Budget, CancelHandle, Completion, Governor};
use alexander_ir::analysis::stratify;
use alexander_ir::{
    match_atom, Atom, FxHashMap, FxHashSet, Literal, Polarity, Predicate, Program, Rule, Subst,
    Term, Var,
};
use alexander_storage::Database;
use alexander_transform::sip_order;
use std::fmt;

/// Options for the OLDT engine.
#[derive(Clone, Debug)]
pub struct OldtOptions {
    /// Select body literals with the same greedy SIP the rewritings use.
    /// When off, bodies are only reordered as far as negation groundness
    /// requires (ablation E9).
    pub reorder: bool,
    /// Resource limits. `max_facts` bounds tabled answers, `max_steps`
    /// bounds resolution steps; rounds do not apply to OLDT.
    pub budget: Budget,
    /// Cooperative cancellation token, checked between resolution steps.
    pub cancel: Option<CancelHandle>,
}

impl Default for OldtOptions {
    fn default() -> OldtOptions {
        OldtOptions {
            reorder: true,
            budget: Budget::UNLIMITED,
            cancel: None,
        }
    }
}

impl OldtOptions {
    /// Builder: attach a resource budget.
    pub fn with_budget(mut self, budget: Budget) -> OldtOptions {
        self.budget = budget;
        self
    }

    /// Builder: attach a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelHandle) -> OldtOptions {
        self.cancel = Some(cancel);
        self
    }
}

/// Errors from the OLDT engine.
#[derive(Clone, Debug)]
pub enum OldtError {
    Invalid(Vec<alexander_ir::ProgramError>),
    NotStratified(alexander_ir::analysis::NotStratified),
    /// A negative literal was selected non-ground (unsafe rule).
    NonGroundNegation(String),
}

impl fmt::Display for OldtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OldtError::Invalid(errs) => {
                write!(f, "invalid program:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            OldtError::NotStratified(e) => write!(f, "{e}"),
            OldtError::NonGroundNegation(l) => {
                write!(f, "negative literal `{l}` selected while non-ground")
            }
        }
    }
}

impl std::error::Error for OldtError {}

/// The result of an OLDT query.
#[derive(Clone, Debug)]
pub struct OldtResult {
    /// Ground instances of the query atom, in discovery order.
    pub answers: Vec<Atom>,
    pub metrics: OldtMetrics,
    /// Distinct tabled calls per predicate (OLDT's call table).
    pub calls_by_pred: FxHashMap<Predicate, u64>,
    /// Distinct answers per predicate across all of its tables.
    pub answers_by_pred: FxHashMap<Predicate, u64>,
    /// Every table: its canonical call atom and its answer count.
    pub call_tables: Vec<(Atom, u64)>,
    /// Whether resolution ran to exhaustion. On a budget/cancel stop the
    /// `answers` are a sound subset of the complete answer set (every
    /// reported answer has a full derivation; negative conclusions are
    /// never drawn from tables the stop left incomplete).
    pub completion: Completion,
}

impl OldtResult {
    /// Iterates over `(canonical call, answer count)` pairs — the call
    /// table, exposed for the power-correspondence check.
    pub fn tables(&self) -> impl Iterator<Item = (&Atom, u64)> + '_ {
        self.call_tables.iter().map(|(a, n)| (a, *n))
    }
}

struct Consumer {
    /// The goal instance the consumer is suspended on.
    goal: Atom,
    /// Environment at suspension time.
    subst: Subst,
    /// Remaining goals after the suspended one.
    rest: Vec<Literal>,
    /// Table the eventual answer belongs to.
    producer_for: usize,
    /// Instantiated head template of the producing rule.
    head: Atom,
}

#[derive(Default)]
struct Table {
    answers: Vec<Atom>,
    answer_set: FxHashSet<Atom>,
    consumers: Vec<Consumer>,
}

struct Node {
    table: usize,
    head: Atom,
    goals: Vec<Literal>,
    subst: Subst,
}

struct Engine<'a> {
    rules_by_pred: FxHashMap<Predicate, Vec<Rule>>,
    edb: &'a Database,
    idb: FxHashSet<Predicate>,
    tables: Vec<Table>,
    table_of: FxHashMap<Atom, usize>,
    work: Vec<Node>,
    metrics: OldtMetrics,
    reorder: bool,
    gov: Governor,
}

/// Canonicalises an atom: variables are renamed `_C0, _C1, …` in order of
/// first occurrence, so two calls equal up to renaming share a table.
fn canonicalize(atom: &Atom) -> Atom {
    let mut renaming: FxHashMap<Var, Var> = FxHashMap::default();
    let terms = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(_) => *t,
            Term::Var(v) => {
                let next = renaming.len();
                Term::Var(
                    *renaming
                        .entry(*v)
                        .or_insert_with(|| Var::new(&format!("_C{next}"))),
                )
            }
        })
        .collect();
    Atom {
        pred: atom.pred,
        terms,
    }
}

impl<'a> Engine<'a> {
    /// Gets or creates the table for `call` (already substituted). Returns
    /// the table index.
    fn ensure_table(&mut self, call: &Atom) -> usize {
        let canon = canonicalize(call);
        if let Some(&t) = self.table_of.get(&canon) {
            return t;
        }
        let t = self.tables.len();
        self.tables.push(Table::default());
        self.table_of.insert(canon.clone(), t);
        self.metrics.calls += 1;

        // Seed generators: resolve the canonical call against every rule.
        let rules = self
            .rules_by_pred
            .get(&canon.predicate())
            .cloned()
            .unwrap_or_default();
        for rule in rules {
            let fresh = rule.rectified();
            let mut s = Subst::new();
            if alexander_ir::unify_atoms(&canon, &fresh.head, &mut s) {
                self.metrics.resolution_steps += 1;
                let bound: FxHashSet<Var> = fresh
                    .head
                    .vars()
                    .filter(|v| s.walk(Term::Var(*v)).is_ground())
                    .collect();
                let goals = if self.reorder {
                    sip_order(&fresh.body, &bound)
                } else {
                    fresh.body.clone()
                };
                self.work.push(Node {
                    table: t,
                    head: fresh.head.clone(),
                    goals,
                    subst: s,
                });
            }
        }
        t
    }

    /// Records an answer in `table`; on novelty, resumes every consumer.
    fn add_answer(&mut self, table: usize, answer: Atom) {
        debug_assert!(answer.is_ground(), "answers are ground: {answer}");
        if self.tables[table].answer_set.contains(&answer) {
            return;
        }
        // Claim-before-insert, as in the bottom-up evaluators: a refused
        // answer is dropped whole and the drain loop will observe the trip.
        if self.gov.claim_fact().is_break() {
            return;
        }
        self.tables[table].answer_set.insert(answer.clone());
        self.tables[table].answers.push(answer.clone());
        self.metrics.answers += 1;
        // Deliver to the consumers registered so far.
        for ci in 0..self.tables[table].consumers.len() {
            let (goal, subst, rest, producer_for, head) = {
                let c = &self.tables[table].consumers[ci];
                (
                    c.goal.clone(),
                    c.subst.clone(),
                    c.rest.clone(),
                    c.producer_for,
                    c.head.clone(),
                )
            };
            self.resume(goal, subst, rest, producer_for, head, &answer);
        }
    }

    fn resume(
        &mut self,
        goal: Atom,
        mut subst: Subst,
        rest: Vec<Literal>,
        producer_for: usize,
        head: Atom,
        answer: &Atom,
    ) {
        self.metrics.resolution_steps += 1;
        if match_atom(&goal, answer, &mut subst) {
            self.work.push(Node {
                table: producer_for,
                head,
                goals: rest,
                subst,
            });
        }
    }

    /// Drives the worklist to exhaustion — or to the budget. On a stop the
    /// remaining work is abandoned; answers recorded so far all have
    /// complete derivations, so the partial result is sound.
    fn drain(&mut self) -> Result<(), OldtError> {
        while let Some(node) = self.work.pop() {
            if self.gov.check_interrupt().is_break()
                || self
                    .gov
                    .check_steps(self.metrics.resolution_steps)
                    .is_break()
            {
                return Ok(());
            }
            self.step(node)?;
        }
        Ok(())
    }

    fn step(&mut self, mut node: Node) -> Result<(), OldtError> {
        if node.goals.is_empty() {
            let answer = node.subst.apply_atom(&node.head);
            self.add_answer(node.table, answer);
            return Ok(());
        }
        let lit = node.goals.remove(0);
        let goal = node.subst.apply_atom(&lit.atom);

        // Built-in comparisons: evaluate natively (arguments are ground by
        // the ordering guarantees of safe rules plus the SIP).
        if let Some(b) = alexander_ir::Builtin::of(goal.predicate()) {
            let Some(args) = goal.ground_args() else {
                return Err(OldtError::NonGroundNegation(goal.to_string()));
            };
            self.metrics.resolution_steps += 1;
            let holds = b.eval(args[0], args[1]);
            let want = lit.polarity == Polarity::Positive;
            if holds == want {
                self.work.push(node);
            }
            return Ok(());
        }

        match (lit.polarity, self.idb.contains(&goal.predicate())) {
            (Polarity::Positive, false) => {
                // Extensional: scan/probe the database.
                if let Some(rel) = self.edb.relation(goal.predicate()) {
                    // Probe on the ground columns.
                    let cols: Vec<usize> = goal
                        .terms
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.is_ground())
                        .map(|(i, _)| i)
                        .collect();
                    let mask = alexander_storage::Mask::of_columns(&cols);
                    let key: Vec<alexander_ir::Const> = cols
                        .iter()
                        // invariant: `cols` was filtered to the positions
                        // where `goal.terms[c]` is a constant.
                        .map(|&c| goal.terms[c].as_const().unwrap())
                        .collect();
                    let matches: Vec<Atom> = rel
                        .probe(mask, &key)
                        .0
                        .map(|row| alexander_storage::row_atom(goal.pred, row))
                        .collect();
                    for fact in matches {
                        self.metrics.resolution_steps += 1;
                        let mut s = node.subst.clone();
                        if match_atom(&goal, &fact, &mut s) {
                            self.work.push(Node {
                                table: node.table,
                                head: node.head.clone(),
                                goals: node.goals.clone(),
                                subst: s,
                            });
                        }
                    }
                }
            }
            (Polarity::Positive, true) => {
                // Intensional: table the call, suspend as a consumer.
                let t = self.ensure_table(&goal);
                self.metrics.suspensions += 1;
                let existing = self.tables[t].answers.clone();
                self.tables[t].consumers.push(Consumer {
                    goal: goal.clone(),
                    subst: node.subst.clone(),
                    rest: node.goals.clone(),
                    producer_for: node.table,
                    head: node.head.clone(),
                });
                for answer in existing {
                    self.resume(
                        goal.clone(),
                        node.subst.clone(),
                        node.goals.clone(),
                        node.table,
                        node.head.clone(),
                        &answer,
                    );
                }
            }
            (Polarity::Negative, false) => {
                if !goal.is_ground() {
                    return Err(OldtError::NonGroundNegation(goal.to_string()));
                }
                self.metrics.resolution_steps += 1;
                if !self.edb.contains_atom(&goal) {
                    self.work.push(node);
                }
            }
            (Polarity::Negative, true) => {
                if !goal.is_ground() {
                    return Err(OldtError::NonGroundNegation(goal.to_string()));
                }
                // Complete the subquery's table (terminates: the program is
                // stratified, so the negated predicate's evaluation never
                // reaches back here).
                let t = self.ensure_table(&goal);
                self.drain()?;
                if self.gov.should_stop() {
                    // The subquery's table may be incomplete; concluding
                    // `!goal` from an empty-so-far table would be unsound.
                    // Drop this branch instead.
                    return Ok(());
                }
                self.metrics.resolution_steps += 1;
                if self.tables[t].answers.is_empty() {
                    self.work.push(node);
                }
            }
        }
        Ok(())
    }
}

/// Answers `query` over `program` + `edb` by OLDT resolution.
pub fn oldt_query(
    program: &Program,
    edb: &Database,
    query: &Atom,
) -> Result<OldtResult, OldtError> {
    oldt_query_opts(program, edb, query, OldtOptions::default())
}

/// [`oldt_query`] with explicit options.
pub fn oldt_query_opts(
    program: &Program,
    edb: &Database,
    query: &Atom,
    opts: OldtOptions,
) -> Result<OldtResult, OldtError> {
    program.validate().map_err(OldtError::Invalid)?;
    let idb = program.idb_predicates();
    let has_idb_negation = program.rules.iter().any(|r| {
        r.body
            .iter()
            .any(|l| l.is_negative() && idb.contains(&l.atom.predicate()))
    });
    if has_idb_negation {
        stratify(program).map_err(OldtError::NotStratified)?;
    }

    // Inline facts become part of the database for resolution.
    let mut full_edb = edb.clone();
    for f in &program.facts {
        // invariant: `program.validate()` above rejects non-ground facts.
        full_edb.insert_atom(f).expect("validated facts are ground");
    }

    let mut rules_by_pred: FxHashMap<Predicate, Vec<Rule>> = FxHashMap::default();
    for r in &program.rules {
        rules_by_pred
            .entry(r.head.predicate())
            .or_default()
            .push(r.clone());
    }

    let mut engine = Engine {
        rules_by_pred,
        edb: &full_edb,
        idb,
        tables: Vec::new(),
        table_of: FxHashMap::default(),
        work: Vec::new(),
        metrics: OldtMetrics::default(),
        reorder: opts.reorder,
        gov: Governor::new(opts.budget, opts.cancel.clone()),
    };

    let answers = if engine.idb.contains(&query.predicate()) {
        let t = engine.ensure_table(query);
        engine.drain()?;
        // The table answers are instances of the canonical call; filter
        // through the original query pattern (handles repeated variables).
        engine.tables[t]
            .answers
            .iter()
            .filter(|a| {
                let mut s = Subst::new();
                match_atom(query, a, &mut s)
            })
            .cloned()
            .collect()
    } else {
        // Extensional query: direct lookup.
        full_edb
            .atoms_of(query.predicate())
            .into_iter()
            .filter(|a| {
                let mut s = Subst::new();
                match_atom(query, a, &mut s)
            })
            .collect()
    };

    let mut calls_by_pred: FxHashMap<Predicate, u64> = FxHashMap::default();
    for call in engine.table_of.keys() {
        *calls_by_pred.entry(call.predicate()).or_default() += 1;
    }
    let mut call_tables: Vec<(Atom, u64)> = engine
        .table_of
        .iter()
        .map(|(call, &t)| (call.clone(), engine.tables[t].answers.len() as u64))
        .collect();
    call_tables.sort_by_key(|(a, _)| a.to_string());
    let mut answers_by_pred: FxHashMap<Predicate, u64> = FxHashMap::default();
    // Distinct answers per predicate across tables (tables of the same
    // predicate can share answers; count the union).
    let mut per_pred_sets: FxHashMap<Predicate, FxHashSet<Atom>> = FxHashMap::default();
    for (call, &t) in &engine.table_of {
        let set = per_pred_sets.entry(call.predicate()).or_default();
        for a in &engine.tables[t].answers {
            set.insert(a.clone());
        }
    }
    for (p, set) in per_pred_sets {
        answers_by_pred.insert(p, set.len() as u64);
    }

    Ok(OldtResult {
        answers,
        metrics: engine.metrics,
        calls_by_pred,
        answers_by_pred,
        call_tables,
        completion: engine.gov.completion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    fn run(src: &str, q: &str) -> OldtResult {
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        oldt_query(&parsed.program, &edb, &parse_atom(q).unwrap()).unwrap()
    }

    const ANCESTOR: &str = "
        par(a, b). par(b, c). par(c, d). par(x, y).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    ";

    #[test]
    fn bound_free_ancestor() {
        let r = run(ANCESTOR, "anc(a, X)");
        let mut got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        got.sort();
        assert_eq!(got, ["anc(a, b)", "anc(a, c)", "anc(a, d)"]);
    }

    #[test]
    fn tabling_is_goal_directed() {
        let r = run(ANCESTOR, "anc(a, X)");
        // Calls: anc(a,_), anc(b,_), anc(c,_), anc(d,_). Never anc(x,_).
        assert_eq!(r.calls_by_pred[&Predicate::new("anc", 2)], 4);
        // Answers across tables: a->{b,c,d}, b->{c,d}, c->{d}, d->{}.
        assert_eq!(r.answers_by_pred[&Predicate::new("anc", 2)], 6);
    }

    #[test]
    fn all_free_query() {
        let r = run(ANCESTOR, "anc(X, Y)");
        assert_eq!(r.answers.len(), 7); // 6 chain pairs + (x, y)
    }

    #[test]
    fn ground_query_success_and_failure() {
        let yes = run(ANCESTOR, "anc(a, d)");
        assert_eq!(yes.answers.len(), 1);
        let no = run(ANCESTOR, "anc(d, a)");
        assert!(no.answers.is_empty());
    }

    #[test]
    fn repeated_variable_query() {
        let r = run(
            "
            e(a, a). e(a, b).
            p(X, Y) :- e(X, Y).
            ",
            "p(X, X)",
        );
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].to_string(), "p(a, a)");
    }

    #[test]
    fn cyclic_graph_terminates() {
        let r = run(
            "
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ",
            "tc(a, X)",
        );
        let mut got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        got.sort();
        assert_eq!(got, ["tc(a, a)", "tc(a, b)"]);
    }

    #[test]
    fn nonlinear_same_generation() {
        let r = run(
            "
            up(a, g1). up(b, g1).
            flat(g1, g1).
            down(g1, c). down(g1, d).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            ",
            "sg(a, Y)",
        );
        let mut got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        got.sort();
        assert_eq!(got, ["sg(a, c)", "sg(a, d)"]);
    }

    #[test]
    fn stratified_negation() {
        let r = run(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
            ",
            "unreach(X)",
        );
        let mut got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        got.sort();
        assert_eq!(got, ["unreach(s)", "unreach(z)"]);
    }

    #[test]
    fn unstratified_negation_is_rejected() {
        let parsed = parse(
            "
            move(a, b).
            win(X) :- move(X, Y), !win(Y).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let err = oldt_query(&parsed.program, &edb, &parse_atom("win(a)").unwrap());
        assert!(matches!(err, Err(OldtError::NotStratified(_))));
    }

    #[test]
    fn extensional_query_is_a_lookup() {
        let r = run(ANCESTOR, "par(a, X)");
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.metrics.calls, 0);
    }

    #[test]
    fn canonicalization_shares_tables() {
        // Both recursive descents reach anc(c, _): one table, not two.
        let r = run(ANCESTOR, "anc(b, X)");
        assert_eq!(r.calls_by_pred[&Predicate::new("anc", 2)], 3); // b, c, d
    }

    #[test]
    fn zero_arity_predicates() {
        let r = run("yes. go :- yes.", "go");
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn step_budget_yields_sound_answer_subset() {
        let parsed = parse(ANCESTOR).unwrap();
        let edb = Database::from_program(&parsed.program);
        let q = parse_atom("anc(X, Y)").unwrap();
        let full = oldt_query(&parsed.program, &edb, &q).unwrap();
        assert!(full.completion.is_complete());
        for max in [1u64, 3, 8] {
            let r = oldt_query_opts(
                &parsed.program,
                &edb,
                &q,
                OldtOptions::default().with_budget(Budget::default().with_max_steps(max)),
            )
            .unwrap();
            assert!(!r.completion.is_complete(), "max_steps {max}");
            for a in &r.answers {
                assert!(full.answers.contains(a), "spurious answer {a}");
            }
            assert!(r.answers.len() < full.answers.len());
        }
    }

    #[test]
    fn answer_budget_caps_the_tables() {
        let r = {
            let parsed = parse(ANCESTOR).unwrap();
            let edb = Database::from_program(&parsed.program);
            oldt_query_opts(
                &parsed.program,
                &edb,
                &parse_atom("anc(X, Y)").unwrap(),
                OldtOptions::default().with_budget(Budget::default().with_max_facts(2)),
            )
            .unwrap()
        };
        assert!(!r.completion.is_complete());
        let tabled: u64 = r.tables().map(|(_, n)| n).sum();
        assert!(tabled <= 2, "{tabled} answers tabled under a 2-fact budget");
    }

    #[test]
    fn cancelled_query_reports_cancelled() {
        let parsed = parse(ANCESTOR).unwrap();
        let edb = Database::from_program(&parsed.program);
        let handle = CancelHandle::default();
        handle.cancel();
        let r = oldt_query_opts(
            &parsed.program,
            &edb,
            &parse_atom("anc(a, X)").unwrap(),
            OldtOptions::default().with_cancel(handle),
        )
        .unwrap();
        assert_eq!(r.completion, Completion::Cancelled);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn incomplete_negation_tables_draw_no_negative_conclusions() {
        // A tight budget stops while `reach`'s table is still incomplete;
        // no `unreach` answer may be emitted from the partial table.
        let src = "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ";
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        let full = oldt_query(&parsed.program, &edb, &parse_atom("unreach(X)").unwrap()).unwrap();
        for max in 1..20u64 {
            let r = oldt_query_opts(
                &parsed.program,
                &edb,
                &parse_atom("unreach(X)").unwrap(),
                OldtOptions::default().with_budget(Budget::default().with_max_steps(max)),
            )
            .unwrap();
            for a in &r.answers {
                assert!(full.answers.contains(a), "unsound {a} at max_steps {max}");
            }
        }
    }

    #[test]
    fn deep_chain_does_not_blow_the_stack() {
        let mut src = String::new();
        for i in 0..600 {
            src.push_str(&format!("e(n{i}, n{}).\n", i + 1));
        }
        src.push_str("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
        let r = run(&src, "tc(n0, X)");
        assert_eq!(r.answers.len(), 600);
    }
}
