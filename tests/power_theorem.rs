//! The paper's power theorem, checked exactly across a battery of shapes:
//! bottom-up evaluation of the Alexander templates materialises OLDT's call
//! and answer tables, adorned predicate by adorned predicate.

use alexander_core::check_power_correspondence;
use alexander_ir::{Atom, Symbol, Term};
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_workload as workload;

fn assert_holds(program: &alexander_ir::Program, edb: &Database, q: &Atom, label: &str) {
    let c = check_power_correspondence(program, edb, q).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(c.holds(), "{label}:\n{c}");
}

#[test]
fn holds_on_chains_of_many_lengths() {
    for n in [1usize, 2, 5, 17, 64] {
        let edb = workload::chain("par", n);
        assert_holds(
            &workload::ancestor(),
            &edb,
            &parse_atom("anc(n0, X)").unwrap(),
            &format!("chain({n})"),
        );
    }
}

#[test]
fn holds_on_random_graphs_over_seeds() {
    for seed in 0..10u64 {
        let edb = workload::random_graph("e", 20, 55, seed);
        assert_holds(
            &workload::transitive_closure(),
            &edb,
            &parse_atom("tc(n1, X)").unwrap(),
            &format!("random seed {seed}"),
        );
    }
}

#[test]
fn holds_on_cycles_where_tabling_matters_most() {
    for n in [2usize, 3, 10] {
        let edb = workload::cycle("e", n);
        assert_holds(
            &workload::transitive_closure(),
            &edb,
            &parse_atom("tc(n0, X)").unwrap(),
            &format!("cycle({n})"),
        );
    }
}

#[test]
fn holds_on_same_generation_trees() {
    for depth in [2usize, 4, 6] {
        let (edb, seed) = workload::sg_tree(depth);
        let q = Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        };
        assert_holds(
            &workload::same_generation(),
            &edb,
            &q,
            &format!("sg({depth})"),
        );
    }
}

#[test]
fn holds_on_nonlinear_recursion() {
    for seed in [3u64, 4] {
        let edb = workload::random_graph("e", 12, 30, seed);
        assert_holds(
            &workload::transitive_closure_nonlinear(),
            &edb,
            &parse_atom("tc(n0, X)").unwrap(),
            &format!("nonlinear seed {seed}"),
        );
    }
}

#[test]
fn holds_on_ground_and_free_queries() {
    let edb = workload::chain("par", 10);
    let program = workload::ancestor();
    for q in ["anc(n2, n7)", "anc(X, Y)", "anc(X, n4)"] {
        assert_holds(&program, &edb, &parse_atom(q).unwrap(), q);
    }
}

#[test]
fn holds_on_empty_answer_queries() {
    // The query constant has no outgoing edges: 1 call, 0 answers — the
    // correspondence must hold on degenerate tables too.
    let edb = workload::chain("par", 5);
    assert_holds(
        &workload::ancestor(),
        &edb,
        &parse_atom("anc(n5, X)").unwrap(),
        "sink query",
    );
    assert_holds(
        &workload::ancestor(),
        &edb,
        &parse_atom("anc(zzz, X)").unwrap(),
        "unknown constant",
    );
}

mod random_program_correspondence {
    //! The theorem on random *programs*: safe definite rules generated from
    //! a small vocabulary, queried bound-free. The strongest form of E3.

    use super::*;
    use alexander_ir::{Literal, Program, Rule, Term};
    use proptest::prelude::*;

    const VARS: [&str; 3] = ["X", "Y", "Z"];

    /// A random safe definite rule over `p/2`, `q/2` (IDB) and `e/2` (EDB):
    /// the head uses only variables bound by the body.
    fn rule() -> impl Strategy<Value = Rule> {
        let lit = (0u8..3, 0u8..3, 0u8..3).prop_map(|(p, a, b)| {
            let name = ["p", "q", "e"][p as usize];
            Literal::pos(alexander_ir::atom(
                name,
                [Term::var(VARS[a as usize]), Term::var(VARS[b as usize])],
            ))
        });
        (0u8..2, proptest::collection::vec(lit, 1..3), 0u8..3, 0u8..3).prop_map(
            |(h, body, ha, hb)| {
                let bound: Vec<_> = body.iter().flat_map(|l| l.vars()).collect();
                let pick = |i: u8| -> Term {
                    let v = alexander_ir::Var::new(VARS[i as usize]);
                    if bound.contains(&v) {
                        Term::Var(v)
                    } else {
                        Term::Var(bound[0])
                    }
                };
                Rule::new(
                    alexander_ir::atom(["p", "q"][h as usize], [pick(ha), pick(hb)]),
                    body,
                )
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn holds_on_random_programs(
            rules in proptest::collection::vec(rule(), 1..5),
            nodes in 2usize..10,
            extra in 0usize..15,
            seed in 0u64..200,
        ) {
            let program = Program::from_rules(rules);
            prop_assume!(program.validate().is_ok());
            prop_assume!(program.is_idb(alexander_ir::Predicate::new("p", 2)));
            let edb = workload::random_graph("e", nodes, nodes + extra, seed);
            let q = parse_atom("tc_probe(n0, X)").unwrap();
            let q = Atom { pred: alexander_ir::Symbol::intern("p"), terms: q.terms };
            let c = check_power_correspondence(&program, &edb, &q)
                .expect("both sides run");
            prop_assert!(c.holds(), "{c}\nprogram:\n{program}");
        }
    }
}

#[test]
fn mutual_recursion_multiple_adornments() {
    // Odd/even paths: two predicates calling each other.
    let program = alexander_parser::parse(
        "
        odd(X, Y) :- e(X, Y).
        odd(X, Y) :- e(X, Z), even(Z, Y).
        even(X, Y) :- e(X, Z), odd(Z, Y).
        ",
    )
    .unwrap()
    .program;
    for seed in [5u64, 6] {
        let edb = workload::random_graph("e", 14, 30, seed);
        assert_holds(
            &program,
            &edb,
            &parse_atom("odd(n0, X)").unwrap(),
            &format!("odd/even seed {seed}"),
        );
    }
}
