//! Property test: pretty-printing then re-parsing any generated program is
//! the identity (on rules and facts).

use alexander_ir::{Atom, Literal, Polarity, Program, Rule, Term};
use alexander_parser::parse;
use proptest::prelude::*;

/// Strategy: a lower-case identifier suitable as a predicate/constant name.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved word", |s| s != "not")
}

/// Strategy: a variable name.
fn varname() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,4}".prop_map(|s| s)
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        varname().prop_map(|v| Term::var(&v)),
        ident().prop_map(|c| Term::sym(&c)),
        (-1000i64..1000).prop_map(Term::int),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (ident(), proptest::collection::vec(term(), 0..4)).prop_map(|(p, ts)| Atom::new(&p, ts))
}

fn literal() -> impl Strategy<Value = Literal> {
    (atom_strategy(), proptest::bool::ANY).prop_map(|(a, neg)| Literal {
        atom: a,
        polarity: if neg {
            Polarity::Negative
        } else {
            Polarity::Positive
        },
    })
}

fn rule() -> impl Strategy<Value = Rule> {
    (atom_strategy(), proptest::collection::vec(literal(), 1..4)).prop_map(|(h, b)| Rule::new(h, b))
}

fn ground_atom() -> impl Strategy<Value = Atom> {
    (
        ident(),
        proptest::collection::vec(
            prop_oneof![
                ident().prop_map(|c| Term::sym(&c)),
                (-1000i64..1000).prop_map(Term::int)
            ],
            0..4,
        ),
    )
        .prop_map(|(p, ts)| Atom::new(&p, ts))
}

fn program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(rule(), 0..6),
        proptest::collection::vec(ground_atom(), 0..6),
    )
        .prop_map(|(rules, facts)| Program { rules, facts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(p in program()) {
        let printed = p.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--\n{printed}"));
        prop_assert_eq!(&reparsed.program.rules, &p.rules, "rules differ\n{}", printed);
        prop_assert_eq!(&reparsed.program.facts, &p.facts, "facts differ\n{}", printed);
    }

    #[test]
    fn printed_queries_reparse(a in atom_strategy()) {
        let text = format!("?- {a}.");
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(parsed.queries.len(), 1);
        prop_assert_eq!(&parsed.queries[0], &a);
    }
}
