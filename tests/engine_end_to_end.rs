//! End-to-end scenarios through the umbrella crate: source text in, answers
//! and reports out, exercising every layer at once.

use alexander_parser::parse_atom;
use alexander_repro::{Engine, Strategy};

#[test]
fn the_readme_scenario() {
    let engine = Engine::from_source(
        "
        par(adam, seth). par(seth, enos). par(enos, kenan).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
    )
    .unwrap();
    let q = parse_atom("anc(adam, X)").unwrap();
    let r = engine.query(&q, Strategy::Alexander).unwrap();
    assert_eq!(r.answers.len(), 3);
    assert_eq!(r.report.calls, Some(4));
}

#[test]
fn incremental_fact_loading() {
    let mut engine = Engine::from_source(
        "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
    )
    .unwrap();
    let q = parse_atom("tc(a, X)").unwrap();
    assert!(engine.query(&q, Strategy::Oldt).unwrap().answers.is_empty());
    engine.insert_fact(&parse_atom("e(a, b)").unwrap()).unwrap();
    engine.insert_fact(&parse_atom("e(b, c)").unwrap()).unwrap();
    assert_eq!(engine.query(&q, Strategy::Oldt).unwrap().answers.len(), 2);
    // A different strategy sees the same EDB.
    assert_eq!(engine.query(&q, Strategy::Magic).unwrap().answers.len(), 2);
}

#[test]
fn multi_idb_program_with_negation_pipeline() {
    // Interesting pipeline: recursion (reach), negation (unreach), then a
    // further rule over the negation's result.
    let engine = Engine::from_source(
        "
        edge(s, a). edge(a, b). edge(b, a).
        node(s). node(a). node(b). node(z). node(w).
        label(z, dead). label(w, dead).
        source(s).
        reach(X) :- source(S), edge(S, X).
        reach(Y) :- reach(X), edge(X, Y).
        unreach(X) :- node(X), !reach(X).
        dead_and_unreach(X) :- unreach(X), label(X, dead).
        ",
    )
    .unwrap();
    let q = parse_atom("dead_and_unreach(X)").unwrap();
    for s in [
        Strategy::Stratified,
        Strategy::ConditionalFixpoint,
        Strategy::Oldt,
    ] {
        let r = engine.query(&q, s).unwrap();
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            got,
            ["dead_and_unreach(w)", "dead_and_unreach(z)"],
            "strategy {s}"
        );
    }
}

#[test]
fn zero_arity_and_integer_constants() {
    let engine = Engine::from_source(
        "
        threshold(10).
        reading(r1, 5). reading(r2, 15).
        over(R) :- reading(R, V), threshold(V2), big(V, V2).
        big(15, 10).
        go :- over(r2).
        ",
    )
    .unwrap();
    let r = engine
        .query(&parse_atom("go").unwrap(), Strategy::SemiNaive)
        .unwrap();
    assert_eq!(r.answers.len(), 1);
}

#[test]
fn error_paths_are_reported_not_panicked() {
    // Unsafe rule.
    assert!(Engine::from_source("p(X, Y) :- q(X).").is_err());
    // Win-move under OLDT: clean stratification error.
    let engine = Engine::from_source(
        "
        move(a, b).
        win(X) :- move(X, Y), !win(Y).
        ",
    )
    .unwrap();
    let err = engine.query(&parse_atom("win(a)").unwrap(), Strategy::Oldt);
    assert!(err.is_err());
    // Same query under the conditional fixpoint: answered.
    let ok = engine
        .query(
            &parse_atom("win(a)").unwrap(),
            Strategy::ConditionalFixpoint,
        )
        .unwrap();
    assert_eq!(ok.answers.len(), 1); // a moves to stuck b: a wins
}

#[test]
fn the_umbrella_reexports_component_crates() {
    // Spot-check the `crates` module wiring.
    let parsed = alexander_repro::crates::parser::parse("p(a).").unwrap();
    assert_eq!(parsed.program.facts.len(), 1);
    let g = alexander_repro::crates::workload::chain("e", 3);
    assert_eq!(g.total_tuples(), 3);
}
