//! Property tests over the rewritings: on random EDBs and random query
//! bindings, magic sets / supplementary magic / Alexander templates answer
//! exactly like direct evaluation, and the three rewritings' demand and
//! answer extensions coincide.

use alexander_eval::eval_seminaive;
use alexander_ir::{Atom, Program, Symbol, Term};
use alexander_storage::Database;
use alexander_transform::{
    alexander, magic_sets, query_answers, sup_magic_sets, Rewritten, SipOptions,
};
use alexander_workload as workload;
use proptest::prelude::*;

/// Direct answers: evaluate the whole program and filter by the query.
fn direct_answers(program: &Program, edb: &Database, query: &Atom) -> Vec<String> {
    let full = eval_seminaive(program, edb).expect("direct evaluation runs");
    let mut out: Vec<String> = full
        .db
        .atoms_of(query.predicate())
        .into_iter()
        .filter(|a| {
            let mut s = alexander_ir::Subst::new();
            alexander_ir::match_atom(query, a, &mut s)
        })
        .map(|a| {
            a.terms
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

/// Rewritten answers via `rw.query` pattern matching.
fn rewritten_answers(rw: &Rewritten, edb: &Database) -> Vec<String> {
    let res = eval_seminaive(&rw.program, edb).expect("rewritten evaluation runs");
    let mut out: Vec<String> = query_answers(&res.db, &rw.query)
        .into_iter()
        .map(|a| {
            a.terms
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

fn check_rewritings(program: &Program, edb: &Database, query: &Atom, label: &str) {
    let opts = SipOptions::default();
    let want = direct_answers(program, edb, query);
    let m = magic_sets(program, query, opts).unwrap();
    let s = sup_magic_sets(program, query, opts).unwrap();
    let a = alexander(program, query, opts).unwrap();
    assert_eq!(rewritten_answers(&m, edb), want, "{label}: magic differs");
    assert_eq!(
        rewritten_answers(&s, edb),
        want,
        "{label}: supmagic differs"
    );
    assert_eq!(
        rewritten_answers(&a, edb),
        want,
        "{label}: alexander differs"
    );

    // Demand sets coincide across the three rewritings.
    let rm = eval_seminaive(&m.program, edb).unwrap();
    let rs = eval_seminaive(&s.program, edb).unwrap();
    let ra = eval_seminaive(&a.program, edb).unwrap();
    assert_eq!(
        rm.db.len_of(m.call_pred),
        rs.db.len_of(s.call_pred),
        "{label}: magic vs supmagic demand"
    );
    assert_eq!(
        rs.db.len_of(s.call_pred),
        ra.db.len_of(a.call_pred),
        "{label}: supmagic vs alexander demand"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn tc_on_random_graphs(
        nodes in 2usize..20,
        extra in 0usize..40,
        seed in 0u64..500,
        start in 0usize..20,
    ) {
        let edb = workload::random_graph("e", nodes, nodes + extra, seed);
        let query = Atom {
            pred: Symbol::intern("tc"),
            terms: vec![Term::Const(workload::node(start % nodes)), Term::var("Y")],
        };
        check_rewritings(&workload::transitive_closure(), &edb, &query, "tc");
    }

    #[test]
    fn nonlinear_tc_on_random_graphs(
        nodes in 2usize..14,
        extra in 0usize..25,
        seed in 0u64..500,
    ) {
        let edb = workload::random_graph("e", nodes, nodes + extra, seed);
        let query = Atom {
            pred: Symbol::intern("tc"),
            terms: vec![Term::Const(workload::node(0)), Term::var("Y")],
        };
        check_rewritings(
            &workload::transitive_closure_nonlinear(),
            &edb,
            &query,
            "nonlinear",
        );
    }

    #[test]
    fn second_argument_bound(
        nodes in 2usize..16,
        extra in 0usize..30,
        seed in 0u64..500,
        target in 0usize..16,
    ) {
        let edb = workload::random_graph("e", nodes, nodes + extra, seed);
        let query = Atom {
            pred: Symbol::intern("tc"),
            terms: vec![Term::var("X"), Term::Const(workload::node(target % nodes))],
        };
        check_rewritings(&workload::transitive_closure(), &edb, &query, "tc fb");
    }

    #[test]
    fn ground_queries(
        nodes in 2usize..16,
        extra in 0usize..30,
        seed in 0u64..500,
        a in 0usize..16,
        b in 0usize..16,
    ) {
        let edb = workload::random_graph("e", nodes, nodes + extra, seed);
        let query = Atom {
            pred: Symbol::intern("tc"),
            terms: vec![
                Term::Const(workload::node(a % nodes)),
                Term::Const(workload::node(b % nodes)),
            ],
        };
        check_rewritings(&workload::transitive_closure(), &edb, &query, "tc bb");
    }
}

#[test]
fn same_generation_fixed_battery() {
    for depth in [2usize, 3, 4] {
        let (edb, seed) = workload::sg_tree(depth);
        let query = Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        };
        check_rewritings(
            &workload::same_generation(),
            &edb,
            &query,
            &format!("sg({depth})"),
        );
    }
}
