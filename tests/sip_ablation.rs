//! SIP options through the public engine: answers never depend on the
//! reordering heuristic, only costs do.

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_transform::SipOptions;

const PERMUTED_SG: &str = "
    up(a, g1). up(b, g1). up(g1, h1). up(g2, h1).
    flat(h1, h1). flat(g1, g2).
    down(h1, g3). down(g2, c). down(g3, d).
    sg(X, Y) :- sg(U, V), up(X, U), down(V, Y).
    sg(X, Y) :- flat(X, Y).
";

#[test]
fn answers_are_identical_with_and_without_reordering() {
    let base = Engine::from_source(PERMUTED_SG).unwrap();
    let no_reorder = Engine::from_source(PERMUTED_SG)
        .unwrap()
        .with_sip(SipOptions { reorder: false });
    let q = parse_atom("sg(a, Y)").unwrap();
    for s in [
        Strategy::Magic,
        Strategy::SupplementaryMagic,
        Strategy::Alexander,
    ] {
        let with = base.query(&q, s).unwrap();
        let without = no_reorder.query(&q, s).unwrap();
        assert_eq!(with.answers, without.answers, "strategy {s}");
        assert!(!with.answers.is_empty());
    }
}

#[test]
fn reordering_reduces_materialisation_on_adversarial_order() {
    let base = Engine::from_source(PERMUTED_SG).unwrap();
    let no_reorder = Engine::from_source(PERMUTED_SG)
        .unwrap()
        .with_sip(SipOptions { reorder: false });
    let q = parse_atom("sg(a, Y)").unwrap();
    let with = base.query(&q, Strategy::Magic).unwrap();
    let without = no_reorder.query(&q, Strategy::Magic).unwrap();
    assert!(
        with.report.facts_materialised <= without.report.facts_materialised,
        "{} vs {}",
        with.report.facts_materialised,
        without.report.facts_materialised
    );
}

#[test]
fn oldt_reorder_toggle_agrees_on_answers() {
    // The OLDT engine has its own reorder flag (used by the power check);
    // toggling it must not change answers either.
    let parsed = alexander_parser::parse(PERMUTED_SG).unwrap();
    let edb = alexander_storage::Database::from_program(&parsed.program);
    let q = parse_atom("sg(a, Y)").unwrap();
    let on = alexander_topdown::oldt_query_opts(
        &parsed.program,
        &edb,
        &q,
        alexander_topdown::OldtOptions {
            reorder: true,
            ..Default::default()
        },
    )
    .unwrap();
    let off = alexander_topdown::oldt_query_opts(
        &parsed.program,
        &edb,
        &q,
        alexander_topdown::OldtOptions {
            reorder: false,
            ..Default::default()
        },
    )
    .unwrap();
    let mut a: Vec<String> = on.answers.iter().map(|x| x.to_string()).collect();
    let mut b: Vec<String> = off.answers.iter().map(|x| x.to_string()).collect();
    a.sort();
    a.dedup();
    b.sort();
    b.dedup();
    assert_eq!(a, b);
}
