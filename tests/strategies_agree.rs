//! Cross-crate invariant: every strategy returns the same answer set on the
//! same query, across graph shapes, query bindings and seeds.

use alexander_core::{Engine, Strategy};
use alexander_ir::{Atom, Symbol, Term};
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_workload as workload;

fn assert_all_agree(engine: &Engine, query: &Atom, label: &str) {
    let baseline = engine
        .query(query, Strategy::SemiNaive)
        .unwrap_or_else(|e| panic!("{label}: baseline failed: {e}"));
    let want: Vec<String> = baseline.answers.iter().map(|a| a.to_string()).collect();
    for s in Strategy::ALL {
        let r = engine
            .query(query, s)
            .unwrap_or_else(|e| panic!("{label}/{s}: failed: {e}"));
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, want, "{label}: strategy {s} disagrees");
    }
}

#[test]
fn transitive_closure_on_shapes() {
    let cases: Vec<(&str, Database)> = vec![
        ("chain", workload::chain("e", 30)),
        ("cycle", workload::cycle("e", 20)),
        ("grid", workload::grid("e", 5)),
        ("tree", workload::tree("e", 3, 3).0),
        ("random-sparse", workload::random_graph("e", 25, 40, 1)),
        ("random-dense", workload::random_graph("e", 15, 120, 2)),
        ("dag", workload::random_dag("e", 25, 60, 3)),
    ];
    for (name, edb) in cases {
        let engine = Engine::new(workload::transitive_closure(), edb).unwrap();
        for q in [
            "tc(n0, X)",
            "tc(X, n3)",
            "tc(n1, n4)",
            "tc(X, Y)",
            "tc(X, X)",
        ] {
            let query = parse_atom(q).unwrap();
            assert_all_agree(&engine, &query, &format!("{name}/{q}"));
        }
    }
}

#[test]
fn nonlinear_rules_agree_too() {
    for seed in [7u64, 8, 9] {
        let edb = workload::random_graph("e", 18, 45, seed);
        let engine = Engine::new(workload::transitive_closure_nonlinear(), edb).unwrap();
        for q in ["tc(n0, X)", "tc(X, Y)"] {
            assert_all_agree(&engine, &parse_atom(q).unwrap(), &format!("seed{seed}/{q}"));
        }
    }
}

#[test]
fn same_generation_agrees_across_depths() {
    for depth in [3usize, 4, 5] {
        let (edb, seed) = workload::sg_tree(depth);
        let engine = Engine::new(workload::same_generation(), edb).unwrap();
        let query = Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        };
        assert_all_agree(&engine, &query, &format!("sg depth {depth}"));
    }
}

#[test]
fn bound_second_argument_flips_the_sip() {
    // Querying tc(X, n5) exercises the fb adornment path everywhere.
    let edb = workload::chain("e", 12);
    let engine = Engine::new(workload::transitive_closure(), edb).unwrap();
    let query = parse_atom("tc(X, n5)").unwrap();
    assert_all_agree(&engine, &query, "fb query");
    let r = engine.query(&query, Strategy::Alexander).unwrap();
    assert_eq!(r.answers.len(), 5); // n0..n4
}

/// Parallel semi-naive is bit-identical to sequential: same relations, same
/// facts-derived metrics, at every thread count — on definite workloads and
/// through every strategy layered on the semi-naive engine.
#[test]
fn parallel_seminaive_matches_sequential_exactly() {
    let cases: Vec<(&str, Database)> = vec![
        ("chain", workload::chain("e", 40)),
        ("cycle", workload::cycle("e", 25)),
        ("grid", workload::grid("e", 5)),
        ("random", workload::random_graph("e", 20, 50, 5)),
    ];
    for (name, edb) in cases {
        for program in [
            workload::transitive_closure(),
            workload::transitive_closure_nonlinear(),
        ] {
            let seq = Engine::new(program.clone(), edb.clone()).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let par = Engine::new(program.clone(), edb.clone())
                    .unwrap()
                    .with_threads(threads);
                for strat in [
                    Strategy::SemiNaive,
                    Strategy::Stratified,
                    Strategy::Magic,
                    Strategy::SupplementaryMagic,
                    Strategy::Alexander,
                ] {
                    let q = parse_atom("tc(n0, X)").unwrap();
                    let a = seq.query(&q, strat).unwrap();
                    let b = par.query(&q, strat).unwrap();
                    let label = format!("{name}/{strat} @ {threads} threads");
                    assert_eq!(a.answers, b.answers, "{label}: answers");
                    assert_eq!(a.report.eval, b.report.eval, "{label}: metrics");
                    assert_eq!(
                        a.report.facts_materialised, b.report.facts_materialised,
                        "{label}: materialisation"
                    );
                }
            }
        }
    }
}

/// The same identity holds under stratified negation: the strata run through
/// the parallel engine one by one, and negative literals still read a frozen,
/// complete lower stratum.
#[test]
fn parallel_seminaive_matches_sequential_with_negation() {
    for seed in [21u64, 22] {
        let mut edb = workload::random_graph("edge", 18, 36, seed);
        for i in 0..18 {
            edb.insert(
                alexander_ir::Predicate::new("node", 1),
                alexander_storage::Tuple::new(vec![workload::node(i)]),
            );
        }
        edb.insert(
            alexander_ir::Predicate::new("source", 1),
            alexander_storage::Tuple::new(vec![workload::node(0)]),
        );
        let program = workload::reach_unreach();
        let seq = Engine::new(program.clone(), edb.clone()).unwrap();
        let query = parse_atom("unreach(X)").unwrap();
        let base = seq.query(&query, Strategy::Stratified).unwrap();
        for threads in [2usize, 4, 8] {
            let par = Engine::new(program.clone(), edb.clone())
                .unwrap()
                .with_threads(threads);
            for strat in [Strategy::Stratified, Strategy::ConditionalFixpoint] {
                let r = par.query(&query, strat).unwrap();
                assert_eq!(base.answers, r.answers, "seed {seed}/{strat} @ {threads}");
            }
            let strat_par = par.query(&query, Strategy::Stratified).unwrap();
            assert_eq!(
                base.report.eval, strat_par.report.eval,
                "seed {seed}: stratified metrics @ {threads} threads"
            );
        }
    }
}

#[test]
fn stratified_negation_strategies_agree() {
    // reach/unreach over random graphs: the three evaluators that support
    // IDB negation must agree.
    for seed in [11u64, 12] {
        let mut edb = workload::random_graph("edge", 20, 40, seed);
        for i in 0..20 {
            edb.insert(
                alexander_ir::Predicate::new("node", 1),
                alexander_storage::Tuple::new(vec![workload::node(i)]),
            );
        }
        edb.insert(
            alexander_ir::Predicate::new("source", 1),
            alexander_storage::Tuple::new(vec![workload::node(0)]),
        );
        let engine = Engine::new(workload::reach_unreach(), edb).unwrap();
        let query = parse_atom("unreach(X)").unwrap();
        let strat = engine.query(&query, Strategy::Stratified).unwrap();
        let cond = engine.query(&query, Strategy::ConditionalFixpoint).unwrap();
        let oldt = engine.query(&query, Strategy::Oldt).unwrap();
        assert_eq!(strat.answers, cond.answers, "seed {seed}");
        assert_eq!(strat.answers, oldt.answers, "seed {seed}");
    }
}
