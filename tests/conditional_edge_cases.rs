//! Hard cases for the conditional fixpoint: multiple delayed negations per
//! rule, condition propagation through deep positive chains, subsumption
//! between conditional and unconditional derivations, and residue
//! minimality.

use alexander_eval::eval_conditional;
use alexander_ir::Predicate;
use alexander_parser::parse;
use alexander_storage::Database;

fn run(src: &str) -> alexander_eval::ConditionalResult {
    let parsed = parse(src).unwrap();
    let edb = Database::from_program(&parsed.program);
    eval_conditional(&parsed.program, &edb).unwrap()
}

fn atoms(r: &alexander_eval::ConditionalResult, pred: &str, arity: usize) -> Vec<String> {
    let mut v: Vec<String> =
        r.db.atoms_of(Predicate::new(pred, arity))
            .iter()
            .map(|a| a.to_string())
            .collect();
    v.sort();
    v
}

#[test]
fn two_negations_in_one_rule() {
    // ok(X) holds iff X is flagged by neither scanner; both scanners are
    // themselves derived (delayed).
    let r = run("
        item(a). item(b). item(c).
        raw1(b). raw2(c).
        flag1(X) :- raw1(X).
        flag2(X) :- raw2(X).
        ok(X) :- item(X), !flag1(X), !flag2(X).
    ");
    assert!(r.is_total());
    assert_eq!(atoms(&r, "ok", 1), ["ok(a)"]);
}

#[test]
fn conditions_survive_three_levels_of_positive_chaining() {
    // d depends on c depends on b depends on the conditional a.
    let r = run("
        move(x, y).
        a(X) :- move(X, Y), !a(Y).
        b(X) :- a(X).
        c(X) :- b(X).
        d(X) :- c(X).
    ");
    assert!(r.is_total());
    // a(y): y has no move -> false; a(x) <- !a(y) -> true; chain follows.
    assert_eq!(atoms(&r, "d", 1), ["d(x)"]);
}

#[test]
fn unconditional_derivation_subsumes_conditional_one() {
    // p(a) is derivable unconditionally (via base) AND conditionally (via
    // the negation rule). The unconditional one must win: p(a) is a fact
    // even though blocked(a) eventually holds.
    let r = run("
        base(a). src(a). mark(a).
        blocked(X) :- mark(X).
        p(X) :- base(X).
        p(X) :- src(X), !blocked(X).
    ");
    assert!(r.is_total());
    assert_eq!(atoms(&r, "p", 1), ["p(a)"]);
    assert_eq!(atoms(&r, "blocked", 1), ["blocked(a)"]);
}

#[test]
fn undefined_core_does_not_leak_into_decided_dependents() {
    // q copies win; only the cyclic positions' q-atoms stay undefined.
    let r = run("
        move(a, b). move(b, a). move(c, d).
        win(X) :- move(X, Y), !win(Y).
        q(X) :- win(X).
    ");
    assert!(!r.is_total());
    let undef: Vec<String> = r.undefined.iter().map(|a| a.to_string()).collect();
    // win(a), win(b) undefined; their q-shadows too. win(c) decided.
    assert!(undef.contains(&"win(a)".to_string()), "{undef:?}");
    assert!(undef.contains(&"q(a)".to_string()), "{undef:?}");
    assert!(!undef.contains(&"win(c)".to_string()), "{undef:?}");
    assert_eq!(atoms(&r, "win", 1), ["win(c)"]);
    assert_eq!(atoms(&r, "q", 1), ["q(c)"]);
}

#[test]
fn negation_of_an_undefined_atom_is_undefined() {
    // lose(X) needs !win(X); on the cycle win is undefined, so lose is too.
    let r = run("
        move(a, b). move(b, a).
        pos(a). pos(b).
        win(X) :- move(X, Y), !win(Y).
        lose(X) :- pos(X), !win(X).
    ");
    let undef: Vec<String> = r.undefined.iter().map(|a| a.to_string()).collect();
    assert!(undef.contains(&"lose(a)".to_string()), "{undef:?}");
    assert!(undef.contains(&"lose(b)".to_string()), "{undef:?}");
    assert!(atoms(&r, "lose", 1).is_empty());
}

#[test]
fn double_negation_chain_resolves() {
    // even/odd via double negation on a chain — a classic dynamically
    // stratified shape.
    let r = run("
        succ(n0, n1). succ(n1, n2). succ(n2, n3).
        odd(Y) :- succ(X, Y), !odd(X).
    ");
    assert!(r.is_total());
    // odd(n0): no predecessor -> no rule -> false. odd(n1) <- !odd(n0): true.
    // odd(n2) <- !odd(n1): false. odd(n3) <- !odd(n2): true.
    assert_eq!(atoms(&r, "odd", 1), ["odd(n1)", "odd(n3)"]);
}

#[test]
fn conditional_statement_metrics_are_populated() {
    let r = run("
        move(a, b).
        win(X) :- move(X, Y), !win(Y).
    ");
    assert!(r.metrics.conditional_statements >= 1);
    assert!(r.metrics.iterations >= 1);
}

#[test]
fn disconnected_components_are_independent() {
    // One decided component, one undefined component, one purely positive.
    let r = run("
        move(a, b).
        move(x, y). move(y, x).
        e(p, q).
        win(X) :- move(X, Y), !win(Y).
        tc(X, Y) :- e(X, Y).
    ");
    assert_eq!(atoms(&r, "win", 1), ["win(a)"]);
    assert_eq!(atoms(&r, "tc", 2), ["tc(p, q)"]);
    assert_eq!(r.undefined.len(), 2); // win(x), win(y)
}
