//! Property tests over *randomly generated programs* (not just random data):
//! evaluator agreement on definite programs, and the stratification
//! hierarchy theorems from the analysis layer.

use alexander_bench::legacy::{eval_seminaive_legacy, LegacyDb};
use alexander_eval::{
    eval_conditional, eval_naive, eval_naive_parallel_opts, eval_seminaive, eval_seminaive_opts,
    eval_stratified, eval_stratified_opts, Budget, Completion, EvalOptions, ExecMode, Resource,
};
use alexander_ir::analysis::{locally_stratified, loosely_stratified, stratify};
use alexander_ir::{Atom, Literal, Polarity, Predicate, Program, Rule, Term};
use alexander_storage::Database;
use alexander_topdown::oldt_query;
use alexander_transform::{alexander, sup_magic_sets, SipOptions};
use proptest::prelude::*;

const CONSTS: [&str; 4] = ["a", "b", "c", "d"];
const VARS: [&str; 4] = ["X", "Y", "Z", "W"];

/// A random *safe* rule: body literals are generated first; the head only
/// uses variables bound by positive body literals (or constants), and
/// negative literals only use bound variables, so every rule is
/// range-restricted by construction.
fn safe_rule(
    idb: &'static [(&'static str, usize)],
    edb: &'static [(&'static str, usize)],
    allow_negation: bool,
) -> impl Strategy<Value = Rule> {
    let term = prop_oneof![
        (0..CONSTS.len()).prop_map(|i| Term::sym(CONSTS[i])),
        (0..VARS.len()).prop_map(|i| Term::var(VARS[i])),
    ];
    let body_atom = (
        0..(idb.len() + edb.len()),
        proptest::collection::vec(term, 2),
    )
        .prop_map(move |(pi, ts)| {
            let (name, arity) = if pi < idb.len() {
                idb[pi]
            } else {
                edb[pi - idb.len()]
            };
            Atom::new(name, ts.into_iter().take(arity).collect())
        });
    let lit = (body_atom, proptest::bool::ANY).prop_map(move |(a, neg)| Literal {
        atom: a,
        polarity: if neg && allow_negation {
            Polarity::Negative
        } else {
            Polarity::Positive
        },
    });
    (
        0..idb.len(),
        proptest::collection::vec(lit, 1..4),
        proptest::collection::vec(0..(CONSTS.len() + VARS.len()), 2),
    )
        .prop_map(move |(hi, mut body, head_picks)| {
            // Variables bound by positive body literals.
            let bound: Vec<_> = body
                .iter()
                .filter(|l| l.is_positive())
                .flat_map(|l| l.vars())
                .collect();
            // Repair negative literals: replace unbound variables by a
            // constant (keeps the rule safe without discarding the case).
            for l in &mut body {
                if l.is_negative() {
                    for t in &mut l.atom.terms {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                *t = Term::sym(CONSTS[0]);
                            }
                        }
                    }
                }
            }
            let (name, arity) = idb[hi];
            let head_terms: Vec<Term> = head_picks
                .into_iter()
                .take(arity)
                .map(|p| {
                    if p < CONSTS.len() {
                        Term::sym(CONSTS[p])
                    } else if let Some(v) = bound.get(p - CONSTS.len()) {
                        Term::Var(*v)
                    } else if let Some(v) = bound.first() {
                        Term::Var(*v)
                    } else {
                        Term::sym(CONSTS[1])
                    }
                })
                .collect();
            // Pad arity if the picks vector was short.
            let mut head_terms = head_terms;
            while head_terms.len() < arity {
                head_terms.push(Term::sym(CONSTS[2]));
            }
            Rule::new(Atom::new(name, head_terms), body)
        })
}

const IDB: &[(&str, usize)] = &[("p", 2), ("q", 1), ("r", 2)];
const EDB: &[(&str, usize)] = &[("e", 2), ("f", 1)];

fn definite_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(safe_rule(IDB, EDB, false), 1..6).prop_map(Program::from_rules)
}

fn negation_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(safe_rule(IDB, EDB, true), 1..6).prop_map(Program::from_rules)
}

fn random_edb() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0..CONSTS.len(), 0..CONSTS.len()), 0..8),
        proptest::collection::vec(0..CONSTS.len(), 0..4),
    )
        .prop_map(|(es, fs)| {
            let mut db = Database::new();
            for (a, b) in es {
                db.insert(
                    Predicate::new("e", 2),
                    alexander_storage::Tuple::new(vec![
                        alexander_ir::Const::sym(CONSTS[a]),
                        alexander_ir::Const::sym(CONSTS[b]),
                    ]),
                );
            }
            for a in fs {
                db.insert(
                    Predicate::new("f", 1),
                    alexander_storage::Tuple::new(vec![alexander_ir::Const::sym(CONSTS[a])]),
                );
            }
            db
        })
}

fn legacy_snapshot(db: &LegacyDb) -> Vec<String> {
    let mut out: Vec<String> = db
        .iter()
        .map(|(p, t)| t.to_atom(p.name).to_string())
        .collect();
    out.sort();
    out
}

fn db_snapshot(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .predicates()
        .into_iter()
        .flat_map(|p| db.atoms_of(p))
        .map(|a| a.to_string())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four bottom-up evaluators compute the same model on definite
    /// programs.
    #[test]
    fn evaluators_agree_on_definite_programs(
        program in definite_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        let naive = eval_naive(&program, &edb).unwrap();
        let semi = eval_seminaive(&program, &edb).unwrap();
        let strat = eval_stratified(&program, &edb).unwrap();
        let cond = eval_conditional(&program, &edb).unwrap();
        prop_assert!(cond.is_total());
        let want = db_snapshot(&naive.db);
        prop_assert_eq!(&db_snapshot(&semi.db), &want, "seminaive differs");
        prop_assert_eq!(&db_snapshot(&strat.db), &want, "stratified differs");
        prop_assert_eq!(&db_snapshot(&cond.db), &want, "conditional differs");
    }

    /// OLDT answers every query exactly like the materialised model.
    #[test]
    fn oldt_agrees_with_bottom_up_on_definite_programs(
        program in definite_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        let semi = eval_seminaive(&program, &edb).unwrap();
        for (name, arity) in IDB {
            let pred = Predicate::new(name, *arity);
            if !program.is_idb(pred) {
                continue;
            }
            let query = Atom::new(
                name,
                (0..*arity).map(|i| Term::var(VARS[i])).collect(),
            );
            let oldt = oldt_query(&program, &edb, &query).unwrap();
            let mut got: Vec<String> = oldt.answers.iter().map(|a| a.to_string()).collect();
            got.sort();
            got.dedup();
            let mut want: Vec<String> = semi
                .db
                .atoms_of(pred)
                .iter()
                .map(|a| a.to_string())
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "predicate {}", pred);
        }
    }

    /// Bry's hierarchy, one direction each:
    /// stratified ⇒ loosely stratified ⇒ locally stratified (over any EDB).
    #[test]
    fn stratification_hierarchy(
        program in negation_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        let strat = stratify(&program).is_ok();
        let loose = loosely_stratified(&program).is_ok();
        if strat {
            prop_assert!(loose, "stratified program failed the loose test:\n{}", program);
        }
        if loose {
            // Fold the EDB into inline facts for the ground check.
            let mut with_facts = program.clone();
            for p in edb.predicates() {
                with_facts.facts.extend(edb.atoms_of(p));
            }
            prop_assert!(
                locally_stratified(&with_facts, &[]).is_ok(),
                "loosely stratified program failed the ground check:\n{}",
                program
            );
        }
    }

    /// Parallel semi-naive produces identical relations AND identical
    /// facts-derived metrics at 1, 2, 4 and 8 threads on random definite
    /// programs.
    #[test]
    fn parallel_seminaive_is_exact_on_definite_programs(
        program in definite_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        let seq = eval_seminaive(&program, &edb).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par =
                eval_seminaive_opts(&program, &edb, EvalOptions::with_threads(threads)).unwrap();
            prop_assert_eq!(&db_snapshot(&par.db), &db_snapshot(&seq.db),
                "relations differ at {} threads", threads);
            prop_assert_eq!(par.metrics, seq.metrics,
                "metrics differ at {} threads", threads);
        }
    }

    /// The same exactness holds through stratified negation: random stratified
    /// programs evaluate to the same model with the same counters at any
    /// thread count.
    #[test]
    fn parallel_stratified_is_exact_on_stratified_programs(
        program in negation_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        prop_assume!(stratify(&program).is_ok());
        let seq = eval_stratified(&program, &edb).unwrap();
        for threads in [2usize, 4, 8] {
            let par =
                eval_stratified_opts(&program, &edb, EvalOptions::with_threads(threads)).unwrap();
            prop_assert_eq!(&db_snapshot(&par.db), &db_snapshot(&seq.db),
                "relations differ at {} threads", threads);
            prop_assert_eq!(par.metrics, seq.metrics,
                "metrics differ at {} threads", threads);
        }
    }

    /// The arena storage rewrite is semantics- and counter-preserving: on
    /// random definite programs the arena engine produces the same model,
    /// fact totals and inference counters as the pre-rewrite boxed-tuple
    /// engine, and stays bit-identical across rewriting strategies
    /// (base/alexander/supmagic) × executors (blocked/tuple) × {1,4}
    /// threads × budget/no-budget. The budget leg uses a non-binding
    /// budget — binding budgets legitimately truncate, and their soundness
    /// is covered by the budget properties below.
    #[test]
    fn arena_matches_legacy_across_strategies_threads_and_budgets(
        program in definite_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        let q = Atom::new("p", vec![Term::var("X"), Term::var("Y")]);
        let opts = SipOptions::default();
        let mut strategies: Vec<(&str, Program)> = vec![("base", program.clone())];
        if let Ok(r) = alexander(&program, &q, opts) {
            strategies.push(("alexander", r.program));
        }
        if let Ok(r) = sup_magic_sets(&program, &q, opts) {
            strategies.push(("supmagic", r.program));
        }
        for (sname, prog) in &strategies {
            let legacy = eval_seminaive_legacy(prog, &edb);
            let seq = eval_seminaive(prog, &edb).unwrap();
            let want = db_snapshot(&seq.db);
            prop_assert_eq!(&legacy_snapshot(&legacy.db), &want,
                "{}: legacy and arena models differ", sname);
            prop_assert_eq!(legacy.db.total_tuples(), seq.db.total_tuples() as u64,
                "{}: fact totals differ", sname);
            prop_assert_eq!(&legacy.metrics, &seq.metrics,
                "{}: inference counters differ", sname);
            let budgets = [None, Some(Budget::default().with_max_facts(u64::MAX))];
            for exec in [ExecMode::Blocked, ExecMode::Tuple] {
                for threads in [1usize, 4] {
                    for budget in budgets {
                        let mut o = EvalOptions::with_threads(threads).with_exec(exec);
                        if let Some(b) = budget {
                            o = o.with_budget(b);
                        }
                        let r = eval_seminaive_opts(prog, &edb, o).unwrap();
                        prop_assert!(r.completion.is_complete(),
                            "{}/{}/{} threads: non-binding budget cut the run",
                            sname, exec, threads);
                        prop_assert_eq!(&db_snapshot(&r.db), &want,
                            "{}/{}/{} threads/budget {}: model differs",
                            sname, exec, threads, budget.is_some());
                        prop_assert_eq!(&r.metrics, &seq.metrics,
                            "{}/{}/{} threads/budget {}: counters differ",
                            sname, exec, threads, budget.is_some());
                    }
                }
            }
        }
    }

    /// A fact budget never invents facts: whatever a budgeted run derives is
    /// a subset of the unbudgeted fixpoint, on every evaluator and at every
    /// thread count (parallel runs may refuse a different subset, but never
    /// an unsound one).
    #[test]
    fn fact_budgeted_runs_are_sound_subsets(
        program in definite_program(),
        edb in random_edb(),
        max_facts in 1u64..6,
    ) {
        prop_assume!(program.validate().is_ok());
        let full = db_snapshot(&eval_seminaive(&program, &edb).unwrap().db);
        let budget = Budget::default().with_max_facts(max_facts);
        let mut results = vec![(
            "naive",
            alexander_eval::eval_naive_opts(
                &program, &edb, EvalOptions::default().with_budget(budget)).unwrap(),
        )];
        for threads in [1usize, 4] {
            results.push((
                "seminaive",
                eval_seminaive_opts(
                    &program, &edb,
                    EvalOptions::with_threads(threads).with_budget(budget)).unwrap(),
            ));
            results.push((
                "parallel-naive",
                eval_naive_parallel_opts(
                    &program, &edb,
                    &EvalOptions::with_threads(threads).with_budget(budget)).unwrap(),
            ));
        }
        for (name, r) in results {
            let part = db_snapshot(&r.db);
            for f in &part {
                prop_assert!(full.contains(f), "{name}: {f} not in the fixpoint");
            }
            if r.completion.is_complete() {
                prop_assert_eq!(&part, &full, "{} complete but smaller", name);
            }
        }
    }

    /// Sequential fact budgeting is *exact*: the run reports
    /// `BudgetExhausted(Facts)` precisely when the budget actually cut the
    /// fixpoint short (strict subset), and `Complete` precisely when it
    /// reached the full model.
    #[test]
    fn sequential_fact_exhaustion_iff_strict_subset(
        program in definite_program(),
        edb in random_edb(),
        max_facts in 1u64..8,
    ) {
        prop_assume!(program.validate().is_ok());
        let full = db_snapshot(&eval_seminaive(&program, &edb).unwrap().db);
        let r = eval_seminaive_opts(
            &program, &edb,
            EvalOptions::default().with_budget(Budget::default().with_max_facts(max_facts)),
        ).unwrap();
        let part = db_snapshot(&r.db);
        let strict = part.len() < full.len();
        match r.completion {
            Completion::Complete =>
                prop_assert!(!strict, "complete run missed {} facts", full.len() - part.len()),
            Completion::BudgetExhausted { resource: Resource::Facts } =>
                prop_assert!(strict, "exhausted run actually reached the fixpoint"),
            other => prop_assert!(false, "unexpected completion {:?}", other),
        }
    }

    /// Partial results are resumable: feeding a budget-cut database back in
    /// as the EDB and evaluating without a budget lands on exactly the
    /// fixpoint of the original run.
    #[test]
    fn resuming_a_partial_result_reaches_the_same_fixpoint(
        program in definite_program(),
        edb in random_edb(),
        max_facts in 1u64..4,
    ) {
        prop_assume!(program.validate().is_ok());
        let full = db_snapshot(&eval_seminaive(&program, &edb).unwrap().db);
        let partial = eval_seminaive_opts(
            &program, &edb,
            EvalOptions::default().with_budget(Budget::default().with_max_facts(max_facts)),
        ).unwrap();
        let resumed = eval_seminaive(&program, &partial.db).unwrap();
        prop_assert_eq!(db_snapshot(&resumed.db), full);
    }

    /// The conditional fixpoint agrees with stratified evaluation whenever
    /// the program stratifies.
    #[test]
    fn conditional_matches_stratified_when_stratified(
        program in negation_program(),
        edb in random_edb(),
    ) {
        prop_assume!(program.validate().is_ok());
        prop_assume!(stratify(&program).is_ok());
        let strat = eval_stratified(&program, &edb).unwrap();
        let cond = eval_conditional(&program, &edb).unwrap();
        prop_assert!(cond.is_total(), "stratified program left residue");
        prop_assert_eq!(db_snapshot(&strat.db), db_snapshot(&cond.db));
    }
}
