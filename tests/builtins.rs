//! Built-in comparison predicates, end to end: the same `lt`/`neq`/… atoms
//! must work under every strategy, inside recursion, under rewritings, and
//! in the conditional fixpoint.

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;

#[test]
fn filtering_with_lt_under_all_strategies() {
    let engine = Engine::from_source(
        "
        score(alice, 10). score(bob, 25). score(carol, 40).
        low(P) :- score(P, S), lt(S, 30).
        ",
    )
    .unwrap();
    let q = parse_atom("low(X)").unwrap();
    for s in Strategy::ALL {
        let r = engine.query(&q, s).unwrap();
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["low(alice)", "low(bob)"], "strategy {s}");
    }
}

#[test]
fn neq_breaks_symmetric_pairs() {
    // Distinct-pair join: classic use of disequality.
    let engine = Engine::from_source(
        "
        in_room(a). in_room(b). in_room(c).
        pair(X, Y) :- in_room(X), in_room(Y), neq(X, Y).
        ",
    )
    .unwrap();
    let q = parse_atom("pair(X, Y)").unwrap();
    for s in [
        Strategy::SemiNaive,
        Strategy::Oldt,
        Strategy::Magic,
        Strategy::Alexander,
    ] {
        let r = engine.query(&q, s).unwrap();
        assert_eq!(r.answers.len(), 6, "strategy {s}"); // 3×3 minus diagonal
    }
}

#[test]
fn builtins_inside_recursion() {
    // Ascending paths: only follow edges to strictly larger labels.
    let engine = Engine::from_source(
        "
        label(a, 1). label(b, 2). label(c, 3). label(d, 1).
        edge(a, b). edge(b, c). edge(c, d). edge(b, d).
        up(X, Y) :- edge(X, Y), label(X, LX), label(Y, LY), lt(LX, LY).
        upreach(X, Y) :- up(X, Y).
        upreach(X, Y) :- up(X, Z), upreach(Z, Y).
        ",
    )
    .unwrap();
    let q = parse_atom("upreach(a, X)").unwrap();
    for s in Strategy::ALL {
        let r = engine.query(&q, s).unwrap();
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        // a->b (1<2), b->c (2<3); c->d and b->d go down.
        assert_eq!(got, ["upreach(a, b)", "upreach(a, c)"], "strategy {s}");
    }
}

#[test]
fn negated_builtins() {
    let engine = Engine::from_source(
        "
        v(1). v(2). v(3).
        not_above(X, Y) :- v(X), v(Y), !gt(X, Y).
        ",
    )
    .unwrap();
    let q = parse_atom("not_above(2, Y)").unwrap();
    for s in [
        Strategy::SemiNaive,
        Strategy::Oldt,
        Strategy::ConditionalFixpoint,
    ] {
        let r = engine.query(&q, s).unwrap();
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, ["not_above(2, 2)", "not_above(2, 3)"], "strategy {s}");
    }
}

#[test]
fn builtins_combined_with_real_negation() {
    // Tournament: a player is dominated if someone strictly younger beat
    // them; champions are undominated. Mixes lt and negation-as-failure.
    let engine = Engine::from_source(
        "
        age(ann, 20). age(ben, 25). age(cy, 30).
        beat(ann, ben). beat(ben, cy). beat(cy, ann).
        upset(X) :- beat(Y, X), age(Y, AY), age(X, AX), lt(AY, AX).
        unupset(X) :- age(X, A), !upset(X).
        ",
    )
    .unwrap();
    let q = parse_atom("unupset(X)").unwrap();
    for s in [
        Strategy::Stratified,
        Strategy::ConditionalFixpoint,
        Strategy::Oldt,
    ] {
        let r = engine.query(&q, s).unwrap();
        let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        // ben lost to younger ann; cy lost to younger ben; ann lost to
        // *older* cy, so ann is not upset.
        assert_eq!(got, ["unupset(ann)"], "strategy {s}");
    }
}

#[test]
fn unsafe_builtin_vars_are_rejected() {
    // lt cannot generate bindings: W appears only in the comparison.
    let err = Engine::from_source("p(X) :- v(X), lt(X, W).");
    assert!(err.is_err());
}

#[test]
fn builtin_heads_are_rejected() {
    assert!(Engine::from_source("lt(X, Y) :- e(X, Y).").is_err());
    assert!(Engine::from_source("neq(a, b).").is_err());
}

#[test]
fn builtins_written_before_their_bindings_are_reordered() {
    // The comparison appears first textually; evaluation must defer it.
    let engine = Engine::from_source(
        "
        v(1). v(5).
        big(X) :- gt(X, 3), v(X).
        ",
    )
    .unwrap();
    let q = parse_atom("big(X)").unwrap();
    for s in [Strategy::SemiNaive, Strategy::Oldt] {
        let r = engine.query(&q, s).unwrap();
        assert_eq!(r.answers.len(), 1, "strategy {s}");
        assert_eq!(r.answers[0].to_string(), "big(5)");
    }
}

#[test]
fn symbol_and_cross_sort_comparisons() {
    let engine = Engine::from_source(
        "
        item(apple). item(pear). item(7).
        small(X) :- item(X), lt(X, banana).
        ",
    )
    .unwrap();
    let q = parse_atom("small(X)").unwrap();
    let r = engine.query(&q, Strategy::SemiNaive).unwrap();
    let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
    // Integers sort before symbols; "apple" < "banana" < "pear".
    assert_eq!(got, ["small(7)", "small(apple)"]);
}
