//! The conditional fixpoint against ground truth: on win–move, its decided
//! atoms must be exactly the retrograde solver's won/lost labelling, and its
//! undefined residue exactly the draws (the well-founded model).

use alexander_bench::retrograde;
use alexander_eval::eval_conditional;
use alexander_ir::Predicate;
use alexander_storage::Database;
use alexander_workload as workload;
use proptest::prelude::*;

fn check_game(edb: &Database, label: &str) {
    let program = workload::win_move();
    let result = eval_conditional(&program, edb).expect("win-move is safe");
    let truth = retrograde::solve(edb, Predicate::new("move", 2));

    let won: std::collections::BTreeSet<String> = result
        .db
        .atoms_of(Predicate::new("win", 1))
        .iter()
        .map(|a| a.terms[0].to_string())
        .collect();
    let won_truth: std::collections::BTreeSet<String> =
        truth.won.iter().map(|c| c.to_string()).collect();
    assert_eq!(won, won_truth, "{label}: won sets differ");

    let drawn: std::collections::BTreeSet<String> = result
        .undefined
        .iter()
        .map(|a| a.terms[0].to_string())
        .collect();
    let drawn_truth: std::collections::BTreeSet<String> =
        truth.drawn.iter().map(|c| c.to_string()).collect();
    assert_eq!(drawn, drawn_truth, "{label}: drawn sets differ");
}

#[test]
fn fixed_shapes() {
    check_game(&workload::chain("move", 15), "chain(15)");
    check_game(&workload::cycle("move", 9), "cycle(9)");
    check_game(&workload::tree("move", 2, 4).0, "tree(2,4)");
    check_game(&workload::grid("move", 4), "grid(4)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random digraphs of any shape: the conditional fixpoint always matches
    /// retrograde analysis, including the undefined core.
    #[test]
    fn random_games_match_retrograde(
        nodes in 2usize..24,
        extra_edges in 0usize..40,
        seed in 0u64..1000,
    ) {
        let edges = nodes + extra_edges;
        let edb = workload::random_graph("move", nodes, edges, seed);
        check_game(&edb, &format!("random({nodes},{edges},{seed})"));
    }

    /// Acyclic games are always fully decided.
    #[test]
    fn dag_games_have_no_residue(
        nodes in 2usize..24,
        extra_edges in 0usize..30,
        seed in 0u64..1000,
    ) {
        let edb = workload::random_dag("move", nodes, nodes + extra_edges, seed);
        let result = eval_conditional(&workload::win_move(), &edb).unwrap();
        prop_assert!(result.is_total(), "DAG left residue: {:?}", result.undefined);
        check_game(&edb, "dag");
    }
}
