//! End-to-end resource governance through the public engine: an exploding
//! workload under a budget must come back as a sound partial result, on
//! every strategy, at 1 and 4 threads, in time proportional to the budget —
//! never the (much larger) time of the full fixpoint.

use alexander_core::eval::{Budget, Completion, ExecMode};
use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A 4-way cross product over `n` constants: `p` has n^4 tuples, far more
/// than the fact budgets below, so every strategy must hit the wall.
fn cross_product_source(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        writeln!(src, "d(c{i}).").unwrap();
    }
    src.push_str("p(X, Y, Z, W) :- d(X), d(Y), d(Z), d(W).\n");
    src
}

/// A single cycle of `n` nodes: `tc` has n^2 tuples and needs ~n rounds, so
/// an ungoverned run takes far longer than the deadlines below.
fn big_cycle_source(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        writeln!(src, "e(n{i}, n{}).", (i + 1) % n).unwrap();
    }
    src.push_str("tc(X, Y) :- e(X, Y).\n");
    src.push_str("tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
    src
}

#[test]
fn fact_budget_bounds_every_strategy_at_one_and_four_threads() {
    // 12^4 = 20736 potential answers against a 10_000-fact budget: the run
    // must stop early and say so, on every strategy. The 200ms deadline is a
    // belt-and-braces second trigger; the elapsed bound is what the issue's
    // acceptance criterion demands (well under 2x the wall budget).
    let src = cross_product_source(12);
    let query = parse_atom("p(X, Y, Z, W)").unwrap();
    let budget = Budget::default()
        .with_timeout_ms(200)
        .with_max_facts(10_000);
    let full = Engine::from_source(&src)
        .unwrap()
        .query(&query, Strategy::SemiNaive)
        .unwrap();
    assert_eq!(full.answers.len(), 20_736);

    for threads in [1usize, 4] {
        for strategy in Strategy::ALL {
            let engine = Engine::from_source(&src)
                .unwrap()
                .with_threads(threads)
                .with_budget(budget);
            let started = Instant::now();
            let result = engine.query(&query, strategy).unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed < Duration::from_millis(400),
                "{strategy}/{threads}t: took {elapsed:?} against a 200ms budget"
            );
            assert!(
                !result.report.completion.is_complete(),
                "{strategy}/{threads}t: 10k-fact budget did not trip on a 20736-fact answer set"
            );
            assert!(
                result.answers.len() < full.answers.len(),
                "{strategy}/{threads}t: partial run returned every answer"
            );
            for a in &result.answers {
                assert!(
                    full.answers.contains(a),
                    "{strategy}/{threads}t: unsound answer {a}"
                );
            }
        }
    }
}

#[test]
fn wall_clock_deadline_cuts_a_deep_fixpoint_short() {
    // 900 nodes -> 810k transitive-closure facts over ~900 rounds; minutes
    // of work ungoverned. A 150ms deadline must bound the run regardless.
    let src = big_cycle_source(900);
    let query = parse_atom("tc(n0, Y)").unwrap();
    for threads in [1usize, 4] {
        for strategy in [Strategy::Naive, Strategy::SemiNaive, Strategy::Stratified] {
            let engine = Engine::from_source(&src)
                .unwrap()
                .with_threads(threads)
                .with_budget(Budget::default().with_timeout_ms(150));
            let started = Instant::now();
            let result = engine.query(&query, strategy).unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed < Duration::from_millis(450),
                "{strategy}/{threads}t: took {elapsed:?} against a 150ms deadline"
            );
            assert!(
                !result.report.completion.is_complete(),
                "{strategy}/{threads}t: deadline did not trip"
            );
        }
    }
}

#[test]
fn cancellation_from_another_thread_stops_a_running_query() {
    let src = big_cycle_source(900);
    let query = parse_atom("tc(n0, Y)").unwrap();
    let mut engine = Engine::from_source(&src).unwrap();
    let handle = engine.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        handle.cancel();
    });
    let started = Instant::now();
    let result = engine.query(&query, Strategy::SemiNaive).unwrap();
    let elapsed = started.elapsed();
    canceller.join().unwrap();
    assert_eq!(result.report.completion, Completion::Cancelled);
    assert!(
        elapsed < Duration::from_millis(500),
        "cancelled query still ran for {elapsed:?}"
    );
}

#[test]
fn budget_consumption_is_reported() {
    let src = cross_product_source(8);
    let query = parse_atom("p(X, Y, Z, W)").unwrap();
    let engine = Engine::from_source(&src)
        .unwrap()
        .with_budget(Budget::default().with_max_facts(100));
    let result = engine.query(&query, Strategy::SemiNaive).unwrap();
    assert!(!result.report.completion.is_complete());
    assert_eq!(result.report.consumed.facts, 100, "claims are exact");
    assert!(result.report.consumed.steps >= result.report.consumed.facts);
    let shown = result.report.to_string();
    assert!(shown.contains("PARTIAL"), "{shown}");

    // The budget tripped on the (default) blocked executor, and the report
    // carries the plan-compilation statistics to prove it ran compiled.
    assert_eq!(result.report.exec, Some(ExecMode::Blocked));
    let stats = result
        .report
        .eval
        .expect("bottom-up run reports metrics")
        .exec;
    assert!(stats.plans_compiled > 0, "no plans cached: {stats:?}");
    assert!(stats.blocks_executed > 0, "no blocks executed: {stats:?}");
    assert!(stats.rows_per_block() > 0.0, "{stats:?}");
}

#[test]
fn budget_trips_identically_on_the_tuple_oracle() {
    // Same budget trip through the per-tuple oracle: claims stay exact and
    // the executor stats confirm no blocked execution happened.
    let src = cross_product_source(8);
    let query = parse_atom("p(X, Y, Z, W)").unwrap();
    let engine = Engine::from_source(&src)
        .unwrap()
        .with_exec(ExecMode::Tuple)
        .with_budget(Budget::default().with_max_facts(100));
    let result = engine.query(&query, Strategy::SemiNaive).unwrap();
    assert!(!result.report.completion.is_complete());
    assert_eq!(result.report.consumed.facts, 100, "claims are exact");
    assert_eq!(result.report.exec, Some(ExecMode::Tuple));
    let stats = result.report.eval.unwrap().exec;
    assert_eq!(stats.plans_compiled, 0, "{stats:?}");
    assert_eq!(stats.blocks_executed, 0, "{stats:?}");
}

#[test]
fn blocked_budget_trip_is_exact_and_identical_across_thread_counts() {
    // The acceptance bar for the blocked path: a tripped fact budget claims
    // exactly `max` facts at every thread count, and the materialised
    // partial databases carry exactly the claimed number of answers.
    let src = cross_product_source(8);
    let query = parse_atom("p(X, Y, Z, W)").unwrap();
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::from_source(&src)
            .unwrap()
            .with_threads(threads)
            .with_budget(Budget::default().with_max_facts(100));
        let result = engine.query(&query, Strategy::SemiNaive).unwrap();
        assert!(
            !result.report.completion.is_complete(),
            "@ {threads} threads"
        );
        assert_eq!(
            result.report.consumed.facts, 100,
            "@ {threads} threads: claims are exact"
        );
        assert_eq!(
            result.answers.len(),
            100,
            "@ {threads} threads: materialised facts match the claims"
        );
    }
}
